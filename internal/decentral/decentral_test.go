package decentral

import (
	"testing"

	"flips/internal/rng"
	"flips/internal/tensor"
)

// plantedNetwork builds groups of near-identical label distributions.
func plantedNetwork(t *testing.T, groups, perGroup int) (*Network, []int) {
	t.Helper()
	r := rng.New(5)
	var lds []tensor.Vec
	var truth []int
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			ld := tensor.NewVec(groups)
			ld[g] = 100
			for j := range ld {
				ld[j] += 2 * r.Float64()
			}
			lds = append(lds, ld)
			truth = append(truth, g)
		}
	}
	net, err := NewNetwork(lds)
	if err != nil {
		t.Fatal(err)
	}
	return net, truth
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := NewNetwork([]tensor.Vec{{1, 0}}); err == nil {
		t.Fatal("single-node network accepted")
	}
	if _, err := NewNetwork([]tensor.Vec{{1, 0}, {1}}); err == nil {
		t.Fatal("ragged dims accepted")
	}
}

func TestElectLeaderLowestLiveID(t *testing.T) {
	net, _ := plantedNetwork(t, 2, 3)
	leader, err := net.ElectLeader()
	if err != nil {
		t.Fatal(err)
	}
	if leader != 0 {
		t.Fatalf("leader %d, want 0", leader)
	}
	if err := net.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := net.Fail(1); err != nil {
		t.Fatal(err)
	}
	leader, err = net.ElectLeader()
	if err != nil {
		t.Fatal(err)
	}
	if leader != 2 {
		t.Fatalf("leader after failures %d, want 2", leader)
	}
	if err := net.Recover(0); err != nil {
		t.Fatal(err)
	}
	leader, _ = net.ElectLeader()
	if leader != 0 {
		t.Fatalf("leader after recovery %d, want 0", leader)
	}
	for id := 0; id < net.NumNodes(); id++ {
		_ = net.Fail(id)
	}
	if _, err := net.ElectLeader(); err == nil {
		t.Fatal("election with no live nodes succeeded")
	}
}

func TestFederatedKMeansRecoversPlantedClusters(t *testing.T) {
	net, truth := plantedNetwork(t, 3, 8)
	res, err := net.FederatedKMeans(3, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids %d", len(res.Centroids))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 24 {
		t.Fatalf("cluster sizes sum to %d, want 24", total)
	}
	// All members of a true group must share a final assignment.
	for g := 0; g < 3; g++ {
		want := -1
		for id, tg := range truth {
			if tg != g {
				continue
			}
			got, err := net.Assignment(id)
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				want = got
			} else if got != want {
				t.Fatalf("group %d split across clusters", g)
			}
		}
	}
}

func TestFederatedKMeansValidation(t *testing.T) {
	net, _ := plantedNetwork(t, 2, 3)
	if _, err := net.FederatedKMeans(0, 10, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := net.FederatedKMeans(99, 10, 1); err == nil {
		t.Fatal("k > live nodes accepted")
	}
}

func TestBuildSelectorEquitableOverFederatedClusters(t *testing.T) {
	net, _ := plantedNetwork(t, 3, 6)
	sel, res, err := net.BuildSelector(3, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 0 {
		t.Fatalf("leader %d", res.Leader)
	}
	if sel.NumParties() != 18 {
		t.Fatalf("selector over %d parties", sel.NumParties())
	}
	picks := sel.Select(0, 3)
	if len(picks) != 3 {
		t.Fatalf("selected %d", len(picks))
	}
	// One pick per federated cluster.
	seen := map[int]bool{}
	for _, id := range picks {
		a, err := net.Assignment(id)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("cluster %d represented twice", a)
		}
		seen[a] = true
	}
}

func TestLeaderFailureReelectionCompletes(t *testing.T) {
	net, _ := plantedNetwork(t, 2, 5)
	// First run with node 0 as leader.
	if _, _, err := net.BuildSelector(2, 50, 17); err != nil {
		t.Fatal(err)
	}
	// Leader crashes; the protocol re-runs under the next leader with the
	// remaining nodes.
	if err := net.Fail(0); err != nil {
		t.Fatal(err)
	}
	sel, res, err := net.BuildSelector(2, 50, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 {
		t.Fatalf("re-elected leader %d, want 1", res.Leader)
	}
	if sel.NumParties() != 9 {
		t.Fatalf("selector over %d parties after failure, want 9", sel.NumParties())
	}
	for _, picked := range sel.Select(0, 4) {
		if picked == 0 {
			t.Fatal("crashed node selected")
		}
	}
}

func TestCrashedNodesExcludedFromAggregation(t *testing.T) {
	net, _ := plantedNetwork(t, 2, 4)
	if err := net.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := net.Fail(6); err != nil {
		t.Fatal(err)
	}
	res, err := net.FederatedKMeans(2, 50, 19)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 6 {
		t.Fatalf("live membership %d, want 6", total)
	}
}

func TestAssignmentValidation(t *testing.T) {
	net, _ := plantedNetwork(t, 2, 3)
	if _, err := net.Assignment(99); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := net.Assignment(0); err == nil {
		t.Fatal("assignment before clustering accepted")
	}
	if err := net.Fail(99); err == nil {
		t.Fatal("failing unknown node accepted")
	}
	if err := net.Recover(99); err == nil {
		t.Fatal("recovering unknown node accepted")
	}
}
