// Package decentral implements the paper's §8 decentralized-FLIPS sketch:
// "To implement FLIPS using SMPC, ... clustering must be computed using an
// SMPC protocol. Participant selection can be achieved through leader
// election, with the leader implementing the FLIPS selection protocol and
// other parties auditing the process."
//
// Concretely, this package provides federated K-Means over the pairwise
// additive-masking secure aggregation of internal/secagg: in every
// iteration, each live node assigns itself to its nearest centroid locally
// (the assignment never leaves the node during clustering) and contributes a
// masked vector containing its label distribution placed in its cluster's
// slot plus a membership count; the leader learns only per-cluster sums and
// counts, from which it computes new centroids. After convergence each node
// reports its final cluster to the elected leader, which builds the FLIPS
// selector — membership is revealed to the leader only, a weaker but
// decentralization-compatible trust model than the TEE of §3.3 (recorded in
// DESIGN.md).
//
// Leader election is deterministic (lowest live node ID), and the protocol
// survives leader failure: the next leader re-collects assignments and
// rebuilds the selector.
package decentral

import (
	"fmt"

	"flips/internal/core"
	"flips/internal/rng"
	"flips/internal/secagg"
	"flips/internal/tensor"
)

// Node is one decentralized participant.
type Node struct {
	ID int

	ld       tensor.Vec // normalized label distribution (private)
	sec      *secagg.Party
	assigned int
	alive    bool
}

// Network simulates the fully-connected overlay of decentralized FLIPS.
type Network struct {
	nodes []*Node
	dim   int
}

// NewNetwork creates one node per label distribution, each with its own
// X25519 masking identity.
func NewNetwork(lds []tensor.Vec) (*Network, error) {
	if len(lds) < 2 {
		return nil, fmt.Errorf("decentral: need at least 2 nodes, have %d", len(lds))
	}
	dim := len(lds[0])
	net := &Network{dim: dim}
	for i, ld := range lds {
		if len(ld) != dim {
			return nil, fmt.Errorf("decentral: node %d label dim %d, want %d", i, len(ld), dim)
		}
		sec, err := secagg.NewParty(i)
		if err != nil {
			return nil, err
		}
		net.nodes = append(net.nodes, &Node{
			ID:       i,
			ld:       ld.Clone().Normalize(),
			sec:      sec,
			assigned: -1,
			alive:    true,
		})
	}
	return net, nil
}

// NumNodes returns the total node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Fail marks a node crashed; it stops participating in every protocol step.
func (n *Network) Fail(id int) error {
	if id < 0 || id >= len(n.nodes) {
		return fmt.Errorf("decentral: unknown node %d", id)
	}
	n.nodes[id].alive = false
	return nil
}

// Recover brings a crashed node back.
func (n *Network) Recover(id int) error {
	if id < 0 || id >= len(n.nodes) {
		return fmt.Errorf("decentral: unknown node %d", id)
	}
	n.nodes[id].alive = true
	return nil
}

// ElectLeader returns the lowest-ID live node — the deterministic election
// every live node can compute and audit locally.
func (n *Network) ElectLeader() (int, error) {
	for _, node := range n.nodes {
		if node.alive {
			return node.ID, nil
		}
	}
	return 0, fmt.Errorf("decentral: no live nodes")
}

// liveNodes snapshots the live membership and their masking identities.
func (n *Network) liveNodes() ([]*Node, []secagg.Peer) {
	var live []*Node
	var peers []secagg.Peer
	for _, node := range n.nodes {
		if node.alive {
			live = append(live, node)
			peers = append(peers, secagg.Peer{ID: node.ID, PublicKey: node.sec.PublicKey()})
		}
	}
	return live, peers
}

// KMeansResult reports the outcome of the decentralized clustering.
type KMeansResult struct {
	// Centroids are the final cluster centers (public to all nodes).
	Centroids []tensor.Vec
	// Sizes are per-cluster live-node counts (the only membership
	// information the aggregation reveals).
	Sizes []int
	// Iterations counts protocol rounds until convergence.
	Iterations int
	// Leader is the node that coordinated the run.
	Leader int
}

// FederatedKMeans runs the SMPC-style clustering over the live nodes:
// centroids are public, assignments stay local, and the leader learns only
// masked-sum aggregates. seed fixes centroid initialization; maxIters bounds
// the protocol rounds.
func (n *Network) FederatedKMeans(k, maxIters int, seed uint64) (*KMeansResult, error) {
	live, peers := n.liveNodes()
	if k < 1 || k > len(live) {
		return nil, fmt.Errorf("decentral: k=%d out of range [1,%d]", k, len(live))
	}
	if maxIters < 1 {
		maxIters = 50
	}
	leader, err := n.ElectLeader()
	if err != nil {
		return nil, err
	}

	// Leader initializes centroids publicly on the probability simplex; it
	// cannot seed from data it is not allowed to see.
	r := rng.New(seed)
	centroids := make([]tensor.Vec, k)
	for c := range centroids {
		centroids[c] = tensor.Vec(r.Dirichlet(1, n.dim))
	}

	slot := n.dim + 1 // per-cluster: LD sum plus membership count
	res := &KMeansResult{Leader: leader}
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1

		// Each node builds its masked contribution: its LD in its nearest
		// centroid's slot, a count of 1 there, zeros elsewhere.
		masked := make([]*secagg.MaskedUpdate, 0, len(live))
		for _, node := range live {
			node.assigned = nearestCentroid(node.ld, centroids)
			contrib := make([]float64, k*slot)
			base := node.assigned * slot
			for j, v := range node.ld {
				contrib[base+j] = v
			}
			contrib[base+n.dim] = 1
			m, err := node.sec.Mask(contrib, peers)
			if err != nil {
				return nil, fmt.Errorf("decentral: node %d: %w", node.ID, err)
			}
			masked = append(masked, m)
		}

		// The leader aggregates; masks cancel, revealing only per-cluster
		// sums and counts.
		sums, err := secagg.Aggregate(masked, k*slot)
		if err != nil {
			return nil, err
		}

		moved := 0.0
		sizes := make([]int, k)
		for c := 0; c < k; c++ {
			count := sums[c*slot+n.dim]
			sizes[c] = int(count + 0.5)
			if sizes[c] == 0 {
				// Empty cluster: re-seed publicly.
				centroids[c] = tensor.Vec(r.Dirichlet(1, n.dim))
				continue
			}
			next := tensor.NewVec(n.dim)
			for j := 0; j < n.dim; j++ {
				next[j] = sums[c*slot+j] / count
			}
			moved += next.Dist(centroids[c])
			centroids[c] = next
		}
		res.Sizes = sizes
		if moved < 1e-9 {
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// BuildSelector completes the §8 workflow: after clustering, every live node
// reports its final assignment to the elected leader (membership is revealed
// to the leader only), which constructs the FLIPS selector. Returns the
// selector, the leader's ID, and the cluster membership view the leader
// holds.
func (n *Network) BuildSelector(k, maxIters int, seed uint64) (*core.Selector, *KMeansResult, error) {
	res, err := n.FederatedKMeans(k, maxIters, seed)
	if err != nil {
		return nil, nil, err
	}
	live, _ := n.liveNodes()
	clusters := make([][]int, k)
	for _, node := range live {
		clusters[node.assigned] = append(clusters[node.assigned], node.ID)
	}
	sel, err := core.NewSelector(clusters)
	if err != nil {
		return nil, nil, err
	}
	return sel, res, nil
}

// Assignment returns a node's own final cluster id (each node knows only its
// own during clustering).
func (n *Network) Assignment(id int) (int, error) {
	if id < 0 || id >= len(n.nodes) {
		return 0, fmt.Errorf("decentral: unknown node %d", id)
	}
	if n.nodes[id].assigned < 0 {
		return 0, fmt.Errorf("decentral: node %d has no assignment yet", id)
	}
	return n.nodes[id].assigned, nil
}

func nearestCentroid(x tensor.Vec, centroids []tensor.Vec) int {
	best, bestD := 0, x.SqDist(centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := x.SqDist(centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
