package parallel

import (
	"runtime"
	"sync"
)

// Queue is the long-lived counterpart of Pool: a bounded work queue with a
// fixed worker set, built for servers that accept work over time instead of
// fanning out a known index range. Submission is non-blocking — when the
// buffer is full the caller is told so and can shed load (the job server
// turns that into HTTP 429) — and Drain gives the graceful-shutdown
// primitive: stop accepting, then wait for every queued and running task.
//
// Tasks must not panic; as a last resort a panicking task is captured like
// Pool's workers (first panic wins, wrapped in *panicError with its stack)
// and re-panicked on the goroutine that calls Drain, so a programming error
// cannot take a worker down silently.
type Queue struct {
	tasks   chan func()
	workers sync.WaitGroup // worker goroutines
	pending sync.WaitGroup // queued + running tasks

	mu      sync.Mutex
	closed  bool
	failure *panicError
}

// NewQueue starts a queue with the given worker count (zero or less selects
// GOMAXPROCS) and buffer capacity (minimum 1).
func NewQueue(workers, capacity int) *Queue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{tasks: make(chan func(), capacity)}
	q.workers.Add(workers)
	for w := 0; w < workers; w++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.workers.Done()
	for fn := range q.tasks {
		func() {
			defer q.pending.Done()
			defer func() {
				if r := recover(); r != nil {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					q.mu.Lock()
					if q.failure == nil {
						q.failure = &panicError{value: r, stack: buf}
					}
					q.mu.Unlock()
				}
			}()
			fn()
		}()
	}
}

// TrySubmit enqueues fn, reporting false without blocking when the buffer is
// full or the queue is draining.
func (q *Queue) TrySubmit(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.pending.Add(1)
	select {
	case q.tasks <- fn:
		return true
	default:
		q.pending.Done()
		return false
	}
}

// Depth reports how many tasks are queued but not yet picked up.
func (q *Queue) Depth() int { return len(q.tasks) }

// Drain stops accepting new tasks and blocks until every queued and running
// task has finished and all workers have exited. Tasks already accepted are
// never dropped. Drain is idempotent and safe to call concurrently; if any
// task panicked, the first captured panic is re-raised here.
func (q *Queue) Drain() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.pending.Wait()
	q.workers.Wait()
	q.mu.Lock()
	failure := q.failure
	q.mu.Unlock()
	if failure != nil {
		panic(failure)
	}
}
