// Package parallel provides the bounded worker pool the FLIPS simulator uses
// to run independent units of work — per-party local training, test-set
// evaluation shards, experiment grid cells — concurrently without giving up
// determinism.
//
// The determinism contract every caller relies on: work items are identified
// by index, results are deposited into index-addressed storage, and any
// order-sensitive reduction happens sequentially after the pool drains. The
// pool itself guarantees only that every index in [0, n) is processed exactly
// once; it makes no ordering promise between workers, which is why callers
// must never fold results in completion order.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a reusable bounded worker pool. The zero value is equivalent to
// New(0): a GOMAXPROCS-wide pool. A Pool is safe for concurrent use and
// carries no per-run state, so one Pool can serve many ForEach/Map calls.
type Pool struct {
	width int
}

// New returns a pool running at most width workers concurrently. A width
// of zero or less selects runtime.GOMAXPROCS(0), the "as fast as the
// hardware allows" default.
func New(width int) *Pool {
	return &Pool{width: width}
}

// Width reports the pool's concurrency bound.
func (p *Pool) Width() int {
	if p.width <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.width
}

// panicError carries a worker panic (with its stack) to the caller's
// goroutine so a failure inside the pool is not silently swallowed.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.value, e.stack)
}

// ForEach invokes fn(i) for every i in [0, n), running at most Width()
// invocations concurrently. It blocks until all invocations return. If any
// invocation panics, ForEach re-panics in the caller's goroutine with a
// *panicError wrapping the first observed panic value; remaining items may
// be skipped once a panic is observed.
//
// When the pool width is 1 (or n <= 1), fn runs on the caller's goroutine in
// index order — the exact sequential semantics, with no goroutine overhead.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachWorker(n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn(worker, i) where worker
// in [0, min(Width(), n)) names the goroutine executing the item. Two items
// given the same worker id never run concurrently, so callers can key
// reusable scratch state (model replicas, buffers) by worker id instead of
// allocating per item. Work distribution across workers is unspecified —
// results must not depend on which worker processed which item. The
// sequential path (width 1 or n <= 1) runs everything as worker 0; panic
// semantics match ForEach.
func (p *Pool) ForEachWorker(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if p.Width() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, wrapped := r.(*panicError); wrapped {
							panic(r)
						}
						buf := make([]byte, 64<<10)
						buf = buf[:runtime.Stack(buf, false)]
						panic(&panicError{value: r, stack: buf})
					}
				}()
				fn(0, i)
			}()
		}
		return
	}

	workers := p.Width()
	if workers > n {
		workers = n
	}

	var (
		next    atomic.Int64
		panicMu sync.Mutex
		failure *panicError
		wg      sync.WaitGroup
	)
	aborted := func() bool {
		panicMu.Lock()
		defer panicMu.Unlock()
		return failure != nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || aborted() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 64<<10)
							buf = buf[:runtime.Stack(buf, false)]
							panicMu.Lock()
							if failure == nil {
								failure = &panicError{value: r, stack: buf}
							}
							panicMu.Unlock()
						}
					}()
					fn(worker, i)
				}()
			}
		}(w)
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}

// Map runs fn over every index in [0, n) on pool p and returns the results
// in index order, regardless of which worker finished first. fn must not
// depend on invocation order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
