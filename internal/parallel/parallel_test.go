package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	t.Parallel()
	if w := New(0).Width(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default width %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(-3).Width(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative width gave %d", w)
	}
	if w := New(7).Width(); w != 7 {
		t.Fatalf("explicit width gave %d", w)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, width := range []int{1, 2, 4, 16} {
		const n = 500
		counts := make([]atomic.Int64, n)
		New(width).ForEach(n, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("width %d: index %d visited %d times", width, i, c)
			}
		}
	}
}

func TestForEachRespectsWidthLimit(t *testing.T) {
	t.Parallel()
	const width = 3
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	go func() {
		// Let workers pile up against the gate before releasing them, so the
		// peak measurement actually exercises the bound.
		close(gate)
	}()
	New(width).ForEach(64, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		<-gate
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > width {
		t.Fatalf("observed %d concurrent workers, width %d", p, width)
	}
}

func TestForEachWidthOneRunsInIndexOrder(t *testing.T) {
	t.Parallel()
	var order []int
	New(1).ForEach(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("width-1 order %v", order)
		}
	}
}

func TestMapReturnsIndexOrderedResults(t *testing.T) {
	t.Parallel()
	for _, width := range []int{1, 4, 32} {
		got := Map(New(width), 200, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: out[%d] = %d", width, i, v)
			}
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	t.Parallel()
	for _, width := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("width %d: panic not propagated", width)
				}
				pe, ok := r.(*panicError)
				if !ok {
					t.Fatalf("width %d: recovered %T, want *panicError", width, r)
				}
				if pe.value != "boom" {
					t.Fatalf("width %d: panic value %v", width, pe.value)
				}
				if len(pe.stack) == 0 {
					t.Fatalf("width %d: no stack captured", width)
				}
			}()
			New(width).ForEach(50, func(i int) {
				if i == 17 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	t.Parallel()
	called := false
	New(4).ForEach(0, func(int) { called = true })
	New(4).ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestZeroValuePoolIsGOMAXPROCSWide(t *testing.T) {
	t.Parallel()
	var p Pool
	if w := p.Width(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("zero-value width %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	got := Map(&p, 100, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("zero-value pool dropped work: out[%d] = %d", i, v)
		}
	}
}

// TestForEachWorkerPartitionsItems: every index is processed exactly once,
// worker ids stay in [0, min(width, n)), and — because items sharing a
// worker id never run concurrently — per-worker state needs no locking.
func TestForEachWorkerPartitionsItems(t *testing.T) {
	t.Parallel()
	const n = 500
	for _, width := range []int{1, 3, 8} {
		p := New(width)
		perWorker := make([][]int, width)
		p.ForEachWorker(n, func(w, i int) {
			if w < 0 || w >= width {
				t.Errorf("worker id %d out of range [0,%d)", w, width)
				return
			}
			// Unsynchronized append: safe iff the same worker id is never
			// used concurrently (the race detector enforces this in -race
			// CI runs).
			perWorker[w] = append(perWorker[w], i)
		})
		seen := make([]bool, n)
		for _, items := range perWorker {
			for _, i := range items {
				if seen[i] {
					t.Fatalf("width %d: index %d processed twice", width, i)
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("width %d: index %d never processed", width, i)
			}
		}
	}
}

// TestForEachWorkerSequentialUsesWorkerZero: the width-1 fast path runs
// everything as worker 0 in index order.
func TestForEachWorkerSequentialUsesWorkerZero(t *testing.T) {
	t.Parallel()
	var got []int
	New(1).ForEachWorker(5, func(w, i int) {
		if w != 0 {
			t.Fatalf("sequential path used worker %d", w)
		}
		got = append(got, i)
	})
	for i, v := range got {
		if i != v {
			t.Fatalf("sequential order broken: %v", got)
		}
	}
}
