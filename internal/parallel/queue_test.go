package parallel

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsEverythingAccepted(t *testing.T) {
	t.Parallel()
	q := NewQueue(4, 64)
	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 50; i++ {
		if q.TrySubmit(func() { ran.Add(1) }) {
			accepted++
		}
	}
	q.Drain()
	if int(ran.Load()) != accepted {
		t.Fatalf("ran %d of %d accepted tasks", ran.Load(), accepted)
	}
	if accepted != 50 {
		t.Fatalf("accepted %d of 50 with a 64-deep buffer", accepted)
	}
}

func TestQueueShedsLoadWhenFull(t *testing.T) {
	t.Parallel()
	q := NewQueue(1, 2)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	ok := q.TrySubmit(func() { started.Done(); <-release })
	if !ok {
		t.Fatal("first submit rejected")
	}
	started.Wait() // worker busy; buffer now empty
	accepted := 0
	for i := 0; i < 5; i++ {
		if q.TrySubmit(func() { <-release }) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d with a 2-deep buffer and a busy worker, want 2", accepted)
	}
	close(release)
	q.Drain()
	if q.TrySubmit(func() {}) {
		t.Fatal("submit accepted after Drain")
	}
}

// TestQueueDrainWaitsForQueuedTasks pins the no-job-lost drain contract:
// tasks still sitting in the buffer when Drain begins must run to completion.
func TestQueueDrainWaitsForQueuedTasks(t *testing.T) {
	t.Parallel()
	q := NewQueue(1, 16)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if !q.TrySubmit(func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	q.Drain()
	if ran.Load() != 10 {
		t.Fatalf("drain lost tasks: ran %d of 10", ran.Load())
	}
}

func TestQueuePanicSurfacesInDrain(t *testing.T) {
	t.Parallel()
	q := NewQueue(2, 4)
	q.TrySubmit(func() { panic("job bug") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Drain swallowed the task panic")
		}
		if !strings.Contains(r.(*panicError).Error(), "job bug") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	q.Drain()
}

func TestQueueConcurrentSubmitAndDrain(t *testing.T) {
	t.Parallel()
	q := NewQueue(4, 8)
	var ran, acc atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if q.TrySubmit(func() { ran.Add(1) }) {
					acc.Add(1)
				}
			}
		}()
	}
	time.Sleep(500 * time.Microsecond)
	q.Drain()
	wg.Wait()
	// Everything accepted before/while draining must have run.
	if ran.Load() != acc.Load() {
		t.Fatalf("ran %d != accepted %d", ran.Load(), acc.Load())
	}
}
