package secagg

import (
	"crypto/rand"
	"fmt"
	"math"
	"math/big"
)

// PaillierPublicKey is the encryption half of a Paillier key pair.
type PaillierPublicKey struct {
	N  *big.Int // modulus n = p·q
	N2 *big.Int // n²
}

// PaillierPrivateKey is the decryption half.
type PaillierPrivateKey struct {
	PaillierPublicKey
	lambda *big.Int // lcm(p−1, q−1)
	mu     *big.Int // lambda⁻¹ mod n (valid for g = n+1)
}

// GeneratePaillierKey creates a key pair with the given modulus size. 1024
// bits is comfortable for benchmarks; production uses ≥2048.
func GeneratePaillierKey(bits int) (*PaillierPrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("secagg: paillier modulus %d bits too small", bits)
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("secagg: prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("secagg: prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue // λ not invertible mod n (vanishingly rare); retry
		}
		return &PaillierPrivateKey{
			PaillierPublicKey: PaillierPublicKey{N: n, N2: new(big.Int).Mul(n, n)},
			lambda:            lambda,
			mu:                mu,
		}, nil
	}
}

// Encrypt encrypts m ∈ [0, n) as c = (1+n)^m · r^n mod n², using the g = n+1
// optimization: (1+n)^m ≡ 1 + m·n (mod n²).
func (pk *PaillierPublicKey) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("secagg: plaintext out of [0, n)")
	}
	r, err := rand.Int(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("secagg: nonce: %w", err)
	}
	for r.Sign() == 0 {
		if r, err = rand.Int(rand.Reader, pk.N); err != nil {
			return nil, err
		}
	}
	// gm = 1 + m·n mod n².
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pk.N2), nil
}

// AddCipher homomorphically adds two ciphertexts: Dec(c1·c2) = m1 + m2.
func (pk *PaillierPublicKey) AddCipher(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// Decrypt recovers m = L(c^λ mod n²)·µ mod n with L(u) = (u−1)/n.
func (sk *PaillierPrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, fmt.Errorf("secagg: ciphertext out of range")
	}
	u := new(big.Int).Exp(c, sk.lambda, sk.N2)
	u.Sub(u, big.NewInt(1))
	u.Div(u, sk.N)
	u.Mul(u, sk.mu)
	return u.Mod(u, sk.N), nil
}

// paillierOffset centers fixed-point values so negatives encode as positive
// residues; sums of up to maxParties values stay below n for any realistic
// modulus.
var paillierOffset = new(big.Int).Lsh(big.NewInt(1), 40)

// EncodeFloat maps a float64 into the Paillier plaintext space.
func EncodeFloat(x float64) *big.Int {
	v := big.NewInt(int64(math.Round(x * FixedPointScale)))
	return v.Add(v, paillierOffset)
}

// DecodeFloatSum inverts EncodeFloat on a sum of parties values.
func DecodeFloatSum(sum *big.Int, parties int) float64 {
	v := new(big.Int).Sub(sum, new(big.Int).Mul(paillierOffset, big.NewInt(int64(parties))))
	f, _ := new(big.Float).SetInt(v).Float64()
	return f / FixedPointScale
}

// EncryptVector encrypts a float vector element-wise.
func (pk *PaillierPublicKey) EncryptVector(xs []float64) ([]*big.Int, error) {
	out := make([]*big.Int, len(xs))
	for i, x := range xs {
		c, err := pk.Encrypt(EncodeFloat(x))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// AggregateCiphertexts multiplies ciphertext vectors element-wise, which
// homomorphically sums the underlying updates — the aggregator never sees a
// plaintext.
func (pk *PaillierPublicKey) AggregateCiphertexts(vectors [][]*big.Int) ([]*big.Int, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("secagg: no ciphertext vectors")
	}
	dim := len(vectors[0])
	sum := make([]*big.Int, dim)
	for i := range sum {
		sum[i] = big.NewInt(1) // multiplicative identity = Enc(0) aggregate seed
	}
	for _, vec := range vectors {
		if len(vec) != dim {
			return nil, fmt.Errorf("secagg: ciphertext vector dim %d, want %d", len(vec), dim)
		}
		for i, c := range vec {
			sum[i] = pk.AddCipher(sum[i], c)
		}
	}
	return sum, nil
}

// DecryptVectorSum decrypts an aggregated ciphertext vector produced from
// `parties` contributions.
func (sk *PaillierPrivateKey) DecryptVectorSum(sum []*big.Int, parties int) ([]float64, error) {
	out := make([]float64, len(sum))
	for i, c := range sum {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, err
		}
		out[i] = DecodeFloatSum(m, parties)
	}
	return out, nil
}
