package secagg

import (
	"math"
	"testing"
)

// FuzzFixedPoint drives the fixed-point codec with arbitrary float pairs:
// non-finite inputs must be rejected, in-range values must round-trip
// within half a quantum, and two in-headroom encodings must sum in the ring
// to the encoding of the real sum (the additive-homomorphism property every
// masked fold relies on). Out-of-range values must error rather than wrap
// silently.
func FuzzFixedPoint(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(1.5, -2.25)
	f.Add(math.Pi, math.Sqrt2)
	f.Add(MaxSumMagnitude/2, MaxSumMagnitude/2)
	f.Add(MaxSumMagnitude, 1.0)
	f.Add(math.Inf(1), math.NaN())
	f.Add(-math.MaxFloat64, math.SmallestNonzeroFloat64)
	f.Fuzz(func(t *testing.T, a, b float64) {
		const quantum = 1.0 / FixedPointScale
		for _, x := range []float64{a, b} {
			v, err := EncodeFixed(x)
			switch {
			case math.IsNaN(x) || math.IsInf(x, 0):
				if err == nil {
					t.Fatalf("EncodeFixed(%v) accepted a non-finite value", x)
				}
			case math.Abs(x) >= MaxSumMagnitude:
				// At or beyond ±2^33 the scaled value leaves int64 (the
				// rounded edge case exactly at the boundary may legally
				// encode when rounding pulls it back in, so only assert the
				// strict interior of the overflow region).
				if math.Abs(x) > MaxSumMagnitude && err == nil {
					t.Fatalf("EncodeFixed(%v) accepted an overflowing value", x)
				}
			default:
				if err != nil {
					t.Fatalf("EncodeFixed(%v) rejected an in-range value: %v", x, err)
				}
				if got := DecodeFixed(v); math.Abs(got-x) > quantum/2+math.Abs(x)*1e-15 {
					t.Fatalf("round-trip %v -> %v (err %v)", x, got, got-x)
				}
			}
		}
		// Homomorphism: when both values and their sum stay inside the
		// headroom bound, ring addition of encodings decodes to the real sum
		// within one quantum per term.
		if !math.IsNaN(a) && !math.IsInf(a, 0) && !math.IsNaN(b) && !math.IsInf(b, 0) &&
			math.Abs(a)+math.Abs(b) < MaxSumMagnitude-1 {
			ea, err1 := EncodeFixed(a)
			eb, err2 := EncodeFixed(b)
			if err1 != nil || err2 != nil {
				t.Fatalf("in-headroom values rejected: %v %v", err1, err2)
			}
			if got, want := DecodeFixed(ea+eb), a+b; math.Abs(got-want) > 2*quantum {
				t.Fatalf("encode(%v)+encode(%v) decoded to %v, want %v", a, b, got, want)
			}
		}
	})
}
