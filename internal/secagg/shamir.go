package secagg

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Shamir secret sharing over GF(2^64), the dropout-recovery escrow of the
// Bonawitz secure-aggregation protocol: at wave start every cohort member
// splits its 32-byte mask-seed secret into shares held by the other
// members; when a member drops mid-wave, any ShareThreshold surviving
// holders hand their shares to the coordinator, which reconstructs the
// dropped member's secret and expands exactly the masks the survivors'
// uploads still carry against it.
//
// The field is GF(2^64) with reduction polynomial x^64 + x^4 + x^3 + x + 1
// (the canonical degree-64 pentanomial). GF(2^64) rather than the textbook
// GF(256): share X coordinates are party IDs + 1, and cohorts at fleet
// scale (flash-crowd surges, 100k-party pools) overflow a byte. A 32-byte
// secret is four field elements shared through four parallel polynomials
// that reuse one coefficient schedule per degree.

// Share is one holder's share of a 32-byte secret: the evaluation point X
// (nonzero; party ID + 1) and the four limb polynomial evaluations.
type Share struct {
	X uint64
	Y [4]uint64
}

// gf64ReductionPoly is x^4 + x^3 + x + 1, the low bits of the reduction
// polynomial for GF(2^64).
const gf64ReductionPoly = 0x1B

// gf64Mul multiplies in GF(2^64): carry-less multiplication reduced by
// x^64 + x^4 + x^3 + x + 1. bits.Mul64's carry-less analogue is built from
// shift-and-xor; 64 iterations, constant time, no allocation.
func gf64Mul(a, b uint64) uint64 {
	var p uint64
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a >> 63
		a <<= 1
		if hi != 0 {
			a ^= gf64ReductionPoly
		}
		b >>= 1
	}
	return p
}

// gf64Inv inverts a nonzero element via Fermat: a^(2^64 − 2). Panics on
// zero, which has no inverse — callers guarantee distinct share X
// coordinates, the only way a zero denominator could arise.
func gf64Inv(a uint64) uint64 {
	if a == 0 {
		panic("secagg: gf64 inverse of zero")
	}
	// Square-and-multiply over the fixed exponent 2^64 − 2 = 0xFFFF...FE.
	r := uint64(1)
	base := a
	for e := uint64(0xFFFFFFFFFFFFFFFE); e != 0; e >>= 1 {
		if e&1 != 0 {
			r = gf64Mul(r, base)
		}
		base = gf64Mul(base, base)
	}
	return r
}

// shamirCoeff derives the degree-k coefficient block (four limbs) of the
// sharing polynomials deterministically from the secret and the wave tag.
// Hashing rather than sampling keeps the whole run a pure function of the
// seed — the simulation's determinism contract — while every (secret, tag)
// pair still gets an independent polynomial.
func shamirCoeff(secret *[32]byte, tag uint64, k int) [4]uint64 {
	var buf [50]byte
	copy(buf[:32], secret[:])
	binary.LittleEndian.PutUint64(buf[32:40], tag)
	binary.LittleEndian.PutUint64(buf[40:48], uint64(k))
	buf[48] = 's'
	buf[49] = 'h'
	d := sha256.Sum256(buf[:])
	var c [4]uint64
	for l := 0; l < 4; l++ {
		c[l] = binary.LittleEndian.Uint64(d[l*8 : l*8+8])
	}
	return c
}

// SplitSecretInto shares secret among the holders named by xs (distinct,
// nonzero evaluation points) with the given reconstruction threshold,
// writing one Share per holder into dst (len(dst) == len(xs)). coeff is
// reusable scratch with capacity ≥ 4·(threshold−1); the grown slice is
// returned so callers can pool it. The polynomial coefficients are derived
// from (secret, tag); the same inputs always produce the same shares.
func SplitSecretInto(dst []Share, secret *[32]byte, xs []uint64, threshold int, tag uint64, coeff []uint64) ([]uint64, error) {
	if len(dst) != len(xs) {
		return coeff, fmt.Errorf("secagg: share buffer len %d != holder count %d", len(dst), len(xs))
	}
	if threshold < 1 || threshold > len(xs) {
		return coeff, fmt.Errorf("secagg: threshold %d out of range [1,%d]", threshold, len(xs))
	}
	ncoeff := 4 * (threshold - 1)
	if cap(coeff) < ncoeff {
		coeff = make([]uint64, ncoeff)
	}
	coeff = coeff[:ncoeff]
	for k := 1; k < threshold; k++ {
		c := shamirCoeff(secret, tag, k)
		copy(coeff[(k-1)*4:], c[:])
	}
	var s [4]uint64
	for l := 0; l < 4; l++ {
		s[l] = binary.LittleEndian.Uint64(secret[l*8 : l*8+8])
	}
	for i, x := range xs {
		if x == 0 {
			return coeff, fmt.Errorf("secagg: share evaluation point 0 at holder %d", i)
		}
		sh := Share{X: x}
		for l := 0; l < 4; l++ {
			// Horner from the highest-degree coefficient down to the secret.
			var y uint64
			for k := threshold - 1; k >= 1; k-- {
				y = gf64Mul(y, x) ^ coeff[(k-1)*4+l]
			}
			y = gf64Mul(y, x) ^ s[l]
			sh.Y[l] = y
		}
		dst[i] = sh
	}
	return coeff, nil
}

// SplitSecret is the allocating convenience form of SplitSecretInto.
func SplitSecret(secret *[32]byte, xs []uint64, threshold int, tag uint64) ([]Share, error) {
	dst := make([]Share, len(xs))
	if _, err := SplitSecretInto(dst, secret, xs, threshold, tag, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// CombineShares reconstructs the 32-byte secret from at least threshold
// shares by Lagrange interpolation at zero over the first threshold shares.
// Share X coordinates must be distinct and nonzero.
func CombineShares(shares []Share, threshold int) ([32]byte, error) {
	var secret [32]byte
	if threshold < 1 {
		return secret, fmt.Errorf("secagg: threshold %d < 1", threshold)
	}
	if len(shares) < threshold {
		return secret, fmt.Errorf("secagg: %d shares below reconstruction threshold %d", len(shares), threshold)
	}
	use := shares[:threshold]
	for i := range use {
		if use[i].X == 0 {
			return secret, fmt.Errorf("secagg: share %d has evaluation point 0", i)
		}
		for j := range use[:i] {
			if use[j].X == use[i].X {
				return secret, fmt.Errorf("secagg: duplicate share evaluation point %d", use[i].X)
			}
		}
	}
	var s [4]uint64
	for i := range use {
		// Lagrange basis at 0: Π_{j≠i} x_j / (x_i ⊕ x_j) (subtraction is xor
		// in characteristic 2).
		num, den := uint64(1), uint64(1)
		for j := range use {
			if j == i {
				continue
			}
			num = gf64Mul(num, use[j].X)
			den = gf64Mul(den, use[i].X^use[j].X)
		}
		li := gf64Mul(num, gf64Inv(den))
		for l := 0; l < 4; l++ {
			s[l] ^= gf64Mul(li, use[i].Y[l])
		}
	}
	for l := 0; l < 4; l++ {
		binary.LittleEndian.PutUint64(secret[l*8:l*8+8], s[l])
	}
	return secret, nil
}
