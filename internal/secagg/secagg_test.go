package secagg

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"flips/internal/rng"
)

func buildParties(t testing.TB, n int) ([]*Party, []Peer) {
	t.Helper()
	parties := make([]*Party, n)
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		p, err := NewParty(i)
		if err != nil {
			t.Fatal(err)
		}
		parties[i] = p
		peers[i] = Peer{ID: i, PublicKey: p.PublicKey()}
	}
	return parties, peers
}

func TestMaskedAggregationRecoversSum(t *testing.T) {
	const n, dim = 8, 50
	parties, peers := buildParties(t, n)
	r := rng.New(1)
	updates := make([][]float64, n)
	want := make([]float64, dim)
	for i := range updates {
		u := make([]float64, dim)
		for j := range u {
			u[j] = r.NormFloat64()
			want[j] += u[j]
		}
		updates[i] = u
	}
	masked := make([]*MaskedUpdate, n)
	for i, p := range parties {
		m, err := p.Mask(updates[i], peers)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
	}
	got, err := Aggregate(masked, dim)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-6 {
			t.Fatalf("dim %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestMaskedUpdateHidesPlaintext(t *testing.T) {
	// A single party's masked vector must not equal its fixed-point
	// plaintext when peers exist (the mask is cryptographically random).
	parties, peers := buildParties(t, 3)
	update := []float64{1, 2, 3, 4}
	masked, err := parties[0].Mask(update, peers)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i, x := range update {
		if masked.Values[i] == mustEncode(t, x) {
			same++
		}
	}
	if same == len(update) {
		t.Fatal("masked update equals plaintext encoding")
	}
}

func TestMaskedAggregationMissingPartyCorrupts(t *testing.T) {
	// Dropping a contributor leaves unmatched masks: the decoded sum must
	// differ from the true partial sum (this is why full secure aggregation
	// needs dropout recovery).
	const n, dim = 4, 8
	parties, peers := buildParties(t, n)
	masked := make([]*MaskedUpdate, 0, n-1)
	truth := make([]float64, dim)
	for i, p := range parties {
		update := make([]float64, dim)
		for j := range update {
			update[j] = 1
		}
		m, err := p.Mask(update, peers)
		if err != nil {
			t.Fatal(err)
		}
		if i == n-1 {
			continue // drop the last party's contribution
		}
		for j := range truth {
			truth[j] += update[j]
		}
		masked = append(masked, m)
	}
	got, err := Aggregate(masked, dim)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for j := range truth {
		diff += math.Abs(got[j] - truth[j])
	}
	if diff < 1 {
		t.Fatal("partial aggregate decoded cleanly; masks should not cancel")
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil, 4); err == nil {
		t.Fatal("empty aggregate accepted")
	}
	if _, err := Aggregate([]*MaskedUpdate{{PartyID: 0, Values: make([]uint64, 3)}}, 4); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func mustEncode(t testing.TB, x float64) uint64 {
	t.Helper()
	v, err := EncodeFixed(x)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFixedPointRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		x := r.NormFloat64() * 100
		return math.Abs(DecodeFixed(mustEncode(t, x))-x) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if DecodeFixed(mustEncode(t, -3.25)) != -3.25 {
		t.Fatal("negative round-trip")
	}
}

func TestEncodeFixedRejectsNonFinite(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := EncodeFixed(x); err == nil {
			t.Fatalf("EncodeFixed(%v) accepted a non-finite value", x)
		}
	}
}

func TestEncodeFixedRejectsOverflow(t *testing.T) {
	// MaxSumMagnitude (2^33) is exactly the single-value bound: round(x·2^30)
	// must stay inside int64.
	if _, err := EncodeFixed(MaxSumMagnitude); err == nil {
		t.Fatal("EncodeFixed(2^33) accepted; int64 conversion would be out of range")
	}
	if _, err := EncodeFixed(-2 * MaxSumMagnitude); err == nil {
		t.Fatal("EncodeFixed(-2^34) accepted")
	}
	// Just inside the bound encodes and round-trips.
	x := MaxSumMagnitude - 1
	if got := DecodeFixed(mustEncode(t, x)); got != x {
		t.Fatalf("near-bound round-trip: got %v want %v", got, x)
	}
}

func TestFixedPointSumWraps(t *testing.T) {
	// Document the headroom bound: two encodings whose real sum stays below
	// MaxSumMagnitude decode to the real sum; at the bound the ring wraps and
	// the decoded value is wildly wrong with no error signal.
	half := MaxSumMagnitude/2 - 1
	ok := mustEncode(t, half) + mustEncode(t, half)
	if got, want := DecodeFixed(ok), 2*half; math.Abs(got-want) > 1e-6 {
		t.Fatalf("in-headroom sum decoded to %v, want %v", got, want)
	}
	atBound := mustEncode(t, MaxSumMagnitude/2) + mustEncode(t, MaxSumMagnitude/2)
	if got := DecodeFixed(atBound); got > 0 {
		t.Fatalf("sum at the headroom bound decoded to %v; expected a wrapped (negative) value demonstrating overflow", got)
	}
	if err := CheckSumHeadroom(MaxSumMagnitude / 2); err != nil {
		t.Fatalf("CheckSumHeadroom below the bound: %v", err)
	}
	if err := CheckSumHeadroom(MaxSumMagnitude); err == nil {
		t.Fatal("CheckSumHeadroom accepted a wrapping bound")
	}
	if err := CheckSumHeadroom(math.NaN()); err == nil {
		t.Fatal("CheckSumHeadroom accepted NaN")
	}
}

func TestDeriveSecretDeterministicAndDistinct(t *testing.T) {
	a := DeriveSecret(7, 1)
	if b := DeriveSecret(7, 1); a != b {
		t.Fatal("DeriveSecret not deterministic")
	}
	if b := DeriveSecret(7, 2); a == b {
		t.Fatal("distinct parties derived the same secret")
	}
	if b := DeriveSecret(8, 1); a == b {
		t.Fatal("distinct seeds derived the same secret")
	}
	if _, err := PrivateKeyFromSecret(&a); err != nil {
		t.Fatalf("derived secret is not a valid X25519 scalar: %v", err)
	}
}

func TestPairSeedSymmetric(t *testing.T) {
	sa, sb := DeriveSecret(3, 10), DeriveSecret(3, 11)
	ka, err := PrivateKeyFromSecret(&sa)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := PrivateKeyFromSecret(&sb)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := PairSeed(ka, kb.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	ba, err := PairSeed(kb, ka.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if ab != ba {
		t.Fatal("pair seed not symmetric")
	}
}

func TestAddPairMaskCancelsAndShards(t *testing.T) {
	seed := DeriveSecret(9, 0)
	const dim = 19 // odd length exercises the partial final block
	acc := make([]uint64, dim)
	// Opposite signs over the full range cancel exactly.
	AddPairMask(acc, &seed, 4, 0, dim, false)
	AddPairMask(acc, &seed, 4, 0, dim, true)
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("coordinate %d: masks did not cancel (%d)", i, v)
		}
	}
	// One full-range expansion equals the same stream expanded in arbitrary
	// sub-ranges: the mask word is a pure function of the coordinate.
	whole := make([]uint64, dim)
	AddPairMask(whole, &seed, 4, 0, dim, false)
	parts := make([]uint64, dim)
	for _, r := range [][2]int{{0, 3}, {3, 4}, {4, 11}, {11, dim}} {
		AddPairMask(parts, &seed, 4, r[0], r[1], false)
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("coordinate %d: sharded expansion %d != whole-range %d", i, parts[i], whole[i])
		}
	}
	// Distinct tags give distinct streams.
	other := make([]uint64, dim)
	AddPairMask(other, &seed, 5, 0, dim, false)
	same := 0
	for i := range whole {
		if whole[i] == other[i] {
			same++
		}
	}
	if same == dim {
		t.Fatal("tag 4 and tag 5 produced identical mask streams")
	}
}

func testKey(t testing.TB) *PaillierPrivateKey {
	t.Helper()
	sk, err := GeneratePaillierKey(512) // small modulus keeps tests fast
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestPaillierEncryptDecrypt(t *testing.T) {
	sk := testKey(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := sk.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("decrypt(%d) = %v", m, got)
		}
	}
}

func TestPaillierProbabilistic(t *testing.T) {
	sk := testKey(t)
	c1, _ := sk.Encrypt(big.NewInt(7))
	c2, _ := sk.Encrypt(big.NewInt(7))
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestPaillierHomomorphicAddition(t *testing.T) {
	sk := testKey(t)
	c1, _ := sk.Encrypt(big.NewInt(100))
	c2, _ := sk.Encrypt(big.NewInt(23))
	sum, err := sk.Decrypt(sk.AddCipher(c1, c2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 123 {
		t.Fatalf("homomorphic sum %v", sum)
	}
}

func TestPaillierRejectsBadInputs(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Encrypt(big.NewInt(-1)); err == nil {
		t.Fatal("negative plaintext accepted")
	}
	if _, err := sk.Encrypt(new(big.Int).Set(sk.N)); err == nil {
		t.Fatal("plaintext >= n accepted")
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("zero ciphertext accepted")
	}
	if _, err := GeneratePaillierKey(64); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestPaillierVectorAggregation(t *testing.T) {
	sk := testKey(t)
	r := rng.New(3)
	const parties, dim = 5, 12
	vectors := make([][]*big.Int, parties)
	want := make([]float64, dim)
	for p := 0; p < parties; p++ {
		update := make([]float64, dim)
		for j := range update {
			update[j] = r.NormFloat64()
			want[j] += update[j]
		}
		enc, err := sk.EncryptVector(update)
		if err != nil {
			t.Fatal(err)
		}
		vectors[p] = enc
	}
	aggCipher, err := sk.AggregateCiphertexts(vectors)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptVectorSum(aggCipher, parties)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-6 {
			t.Fatalf("dim %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestPaillierAggregateValidation(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.AggregateCiphertexts(nil); err == nil {
		t.Fatal("empty aggregation accepted")
	}
	v1, _ := sk.EncryptVector([]float64{1, 2})
	v2, _ := sk.EncryptVector([]float64{1})
	if _, err := sk.AggregateCiphertexts([][]*big.Int{v1, v2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEncodeDecodeFloatSum(t *testing.T) {
	xs := []float64{-5.5, 0, 2.25}
	sum := new(big.Int)
	for _, x := range xs {
		sum.Add(sum, EncodeFloat(x))
	}
	if got := DecodeFloatSum(sum, len(xs)); math.Abs(got-(-3.25)) > 1e-6 {
		t.Fatalf("decoded %v", got)
	}
}
