package secagg

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"flips/internal/rng"
)

func buildParties(t testing.TB, n int) ([]*Party, []Peer) {
	t.Helper()
	parties := make([]*Party, n)
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		p, err := NewParty(i)
		if err != nil {
			t.Fatal(err)
		}
		parties[i] = p
		peers[i] = Peer{ID: i, PublicKey: p.PublicKey()}
	}
	return parties, peers
}

func TestMaskedAggregationRecoversSum(t *testing.T) {
	const n, dim = 8, 50
	parties, peers := buildParties(t, n)
	r := rng.New(1)
	updates := make([][]float64, n)
	want := make([]float64, dim)
	for i := range updates {
		u := make([]float64, dim)
		for j := range u {
			u[j] = r.NormFloat64()
			want[j] += u[j]
		}
		updates[i] = u
	}
	masked := make([]*MaskedUpdate, n)
	for i, p := range parties {
		m, err := p.Mask(updates[i], peers)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
	}
	got, err := Aggregate(masked, dim)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-6 {
			t.Fatalf("dim %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestMaskedUpdateHidesPlaintext(t *testing.T) {
	// A single party's masked vector must not equal its fixed-point
	// plaintext when peers exist (the mask is cryptographically random).
	parties, peers := buildParties(t, 3)
	update := []float64{1, 2, 3, 4}
	masked, err := parties[0].Mask(update, peers)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i, x := range update {
		if masked.Values[i] == encodeFixed(x) {
			same++
		}
	}
	if same == len(update) {
		t.Fatal("masked update equals plaintext encoding")
	}
}

func TestMaskedAggregationMissingPartyCorrupts(t *testing.T) {
	// Dropping a contributor leaves unmatched masks: the decoded sum must
	// differ from the true partial sum (this is why full secure aggregation
	// needs dropout recovery).
	const n, dim = 4, 8
	parties, peers := buildParties(t, n)
	masked := make([]*MaskedUpdate, 0, n-1)
	truth := make([]float64, dim)
	for i, p := range parties {
		update := make([]float64, dim)
		for j := range update {
			update[j] = 1
		}
		m, err := p.Mask(update, peers)
		if err != nil {
			t.Fatal(err)
		}
		if i == n-1 {
			continue // drop the last party's contribution
		}
		for j := range truth {
			truth[j] += update[j]
		}
		masked = append(masked, m)
	}
	got, err := Aggregate(masked, dim)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for j := range truth {
		diff += math.Abs(got[j] - truth[j])
	}
	if diff < 1 {
		t.Fatal("partial aggregate decoded cleanly; masks should not cancel")
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil, 4); err == nil {
		t.Fatal("empty aggregate accepted")
	}
	if _, err := Aggregate([]*MaskedUpdate{{PartyID: 0, Values: make([]uint64, 3)}}, 4); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestFixedPointRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		x := r.NormFloat64() * 100
		return math.Abs(decodeFixed(encodeFixed(x))-x) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if decodeFixed(encodeFixed(-3.25)) != -3.25 {
		t.Fatal("negative round-trip")
	}
}

func testKey(t testing.TB) *PaillierPrivateKey {
	t.Helper()
	sk, err := GeneratePaillierKey(512) // small modulus keeps tests fast
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestPaillierEncryptDecrypt(t *testing.T) {
	sk := testKey(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := sk.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("decrypt(%d) = %v", m, got)
		}
	}
}

func TestPaillierProbabilistic(t *testing.T) {
	sk := testKey(t)
	c1, _ := sk.Encrypt(big.NewInt(7))
	c2, _ := sk.Encrypt(big.NewInt(7))
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestPaillierHomomorphicAddition(t *testing.T) {
	sk := testKey(t)
	c1, _ := sk.Encrypt(big.NewInt(100))
	c2, _ := sk.Encrypt(big.NewInt(23))
	sum, err := sk.Decrypt(sk.AddCipher(c1, c2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 123 {
		t.Fatalf("homomorphic sum %v", sum)
	}
}

func TestPaillierRejectsBadInputs(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Encrypt(big.NewInt(-1)); err == nil {
		t.Fatal("negative plaintext accepted")
	}
	if _, err := sk.Encrypt(new(big.Int).Set(sk.N)); err == nil {
		t.Fatal("plaintext >= n accepted")
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("zero ciphertext accepted")
	}
	if _, err := GeneratePaillierKey(64); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestPaillierVectorAggregation(t *testing.T) {
	sk := testKey(t)
	r := rng.New(3)
	const parties, dim = 5, 12
	vectors := make([][]*big.Int, parties)
	want := make([]float64, dim)
	for p := 0; p < parties; p++ {
		update := make([]float64, dim)
		for j := range update {
			update[j] = r.NormFloat64()
			want[j] += update[j]
		}
		enc, err := sk.EncryptVector(update)
		if err != nil {
			t.Fatal(err)
		}
		vectors[p] = enc
	}
	aggCipher, err := sk.AggregateCiphertexts(vectors)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptVectorSum(aggCipher, parties)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-6 {
			t.Fatalf("dim %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestPaillierAggregateValidation(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.AggregateCiphertexts(nil); err == nil {
		t.Fatal("empty aggregation accepted")
	}
	v1, _ := sk.EncryptVector([]float64{1, 2})
	v2, _ := sk.EncryptVector([]float64{1})
	if _, err := sk.AggregateCiphertexts([][]*big.Int{v1, v2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEncodeDecodeFloatSum(t *testing.T) {
	xs := []float64{-5.5, 0, 2.25}
	sum := new(big.Int)
	for _, x := range xs {
		sum.Add(sum, EncodeFloat(x))
	}
	if got := DecodeFloatSum(sum, len(xs)); math.Abs(got-(-3.25)) > 1e-6 {
		t.Fatalf("decoded %v", got)
	}
}
