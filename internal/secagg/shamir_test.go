package secagg

import (
	"math/bits"
	"testing"

	"flips/internal/rng"
)

// gf64MulRef is a reference carry-less multiply cross-checking gf64Mul: it
// builds the 128-bit product bit by bit and reduces x^64 ≡ x^4+x^3+x+1.
func gf64MulRef(a, b uint64) uint64 {
	var lo, hi uint64
	for i := 0; i < 64; i++ {
		if b&(1<<uint(i)) != 0 {
			lo ^= a << uint(i)
			hi ^= a >> uint(64-i) // shift by 64 yields 0 for i == 0
		}
	}
	for hi != 0 {
		i := bits.TrailingZeros64(hi)
		hi &^= 1 << uint(i)
		red := uint64(gf64ReductionPoly)
		lo ^= red << uint(i)
		if i >= 60 {
			hi ^= red >> uint(64-i)
		}
	}
	return lo
}

func TestGF64MulMatchesReference(t *testing.T) {
	r := rng.New(0x6F)
	for i := 0; i < 2000; i++ {
		a, b := r.Uint64(), r.Uint64()
		if got, want := gf64Mul(a, b), gf64MulRef(a, b); got != want {
			t.Fatalf("gf64Mul(%#x, %#x) = %#x, reference %#x", a, b, got, want)
		}
	}
	// Field axioms on random triples: commutativity, distributivity,
	// multiplicative identity.
	for i := 0; i < 500; i++ {
		a, b, c := r.Uint64(), r.Uint64(), r.Uint64()
		if gf64Mul(a, b) != gf64Mul(b, a) {
			t.Fatal("gf64Mul not commutative")
		}
		if gf64Mul(a, b^c) != gf64Mul(a, b)^gf64Mul(a, c) {
			t.Fatal("gf64Mul not distributive over xor")
		}
		if gf64Mul(a, 1) != a {
			t.Fatal("1 is not the multiplicative identity")
		}
	}
}

func TestGF64Inv(t *testing.T) {
	r := rng.New(0x1217)
	for i := 0; i < 200; i++ {
		a := r.Uint64()
		if a == 0 {
			continue
		}
		if gf64Mul(a, gf64Inv(a)) != 1 {
			t.Fatalf("a · a⁻¹ != 1 for a = %#x", a)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("gf64Inv(0) did not panic")
		}
	}()
	gf64Inv(0)
}

func TestShamirRoundTrip(t *testing.T) {
	secret := DeriveSecret(42, 7)
	xs := []uint64{1, 2, 3, 4, 5, 6, 7}
	for threshold := 1; threshold <= len(xs); threshold++ {
		shares, err := SplitSecret(&secret, xs, threshold, 99)
		if err != nil {
			t.Fatal(err)
		}
		// Any threshold-sized subset reconstructs; walk a few rotations.
		for rot := 0; rot < len(xs); rot++ {
			subset := make([]Share, 0, threshold)
			for k := 0; k < threshold; k++ {
				subset = append(subset, shares[(rot+k)%len(xs)])
			}
			got, err := CombineShares(subset, threshold)
			if err != nil {
				t.Fatal(err)
			}
			if got != secret {
				t.Fatalf("threshold %d rotation %d: reconstructed wrong secret", threshold, rot)
			}
		}
	}
}

func TestShamirBelowThresholdFails(t *testing.T) {
	secret := DeriveSecret(1, 1)
	shares, err := SplitSecret(&secret, []uint64{1, 2, 3, 4}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineShares(shares[:2], 3); err == nil {
		t.Fatal("2 of 3 shares reconstructed")
	}
	// With threshold 3, two shares alone must not determine the secret: a
	// forged third share yields a different (wrong) reconstruction.
	forged := append([]Share{}, shares[:2]...)
	forged = append(forged, Share{X: shares[2].X, Y: [4]uint64{1, 2, 3, 4}})
	got, err := CombineShares(forged, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got == secret {
		t.Fatal("forged share still reconstructed the true secret")
	}
}

func TestShamirDeterministic(t *testing.T) {
	secret := DeriveSecret(8, 3)
	xs := []uint64{10, 20, 30}
	a, err := SplitSecret(&secret, xs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitSecret(&secret, xs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (secret, tag) produced different shares")
		}
	}
	c, err := SplitSecret(&secret, xs, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Y == c[0].Y {
		t.Fatal("different tags produced identical shares")
	}
}

func TestShamirValidation(t *testing.T) {
	secret := DeriveSecret(0, 0)
	if _, err := SplitSecret(&secret, []uint64{1, 2}, 3, 0); err == nil {
		t.Fatal("threshold above holder count accepted")
	}
	if _, err := SplitSecret(&secret, []uint64{1, 0}, 2, 0); err == nil {
		t.Fatal("zero evaluation point accepted")
	}
	if _, err := SplitSecretInto(make([]Share, 1), &secret, []uint64{1, 2}, 2, 0, nil); err == nil {
		t.Fatal("mismatched share buffer accepted")
	}
	shares, err := SplitSecret(&secret, []uint64{1, 2}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineShares(shares, 0); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	dup := []Share{shares[0], shares[0]}
	if _, err := CombineShares(dup, 2); err == nil {
		t.Fatal("duplicate evaluation points accepted")
	}
	bad := []Share{{X: 0}, shares[1]}
	if _, err := CombineShares(bad, 2); err == nil {
		t.Fatal("zero evaluation point accepted in combine")
	}
}

func TestSplitSecretIntoReusesScratch(t *testing.T) {
	secret := DeriveSecret(5, 5)
	xs := []uint64{1, 2, 3, 4, 5}
	dst := make([]Share, len(xs))
	coeff, err := SplitSecretInto(dst, &secret, xs, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		coeff, err = SplitSecretInto(dst, &secret, xs, 3, 2, coeff)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SplitSecretInto allocates %.0f/op, want 0", allocs)
	}
}
