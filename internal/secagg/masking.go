// Package secagg implements the secure-aggregation techniques the FLIPS
// paper surveys in §2.4 and proposes to combine with FLIPS in §8:
//
//   - pairwise additive masking (the core of practical secure aggregation,
//     Bonawitz et al. CCS'17): every pair of parties derives a shared mask
//     from a real X25519 key agreement; each party adds the mask with
//     opposite signs, so the masks cancel in the aggregate and the server
//     learns only the sum;
//   - Paillier additively homomorphic encryption (Paillier '99), the
//     building block of BatchCrypt-style cross-silo FL, implemented on
//     math/big with the standard g = n+1 simplification.
//
// Both operate on fixed-point encodings of float64 model updates. The
// comparison benchmark in bench_test.go reproduces the paper's §2.4 claim
// that HE costs two to three orders of magnitude more than hardware-assisted
// (TEE) aggregation.
package secagg

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// FixedPointScale converts floats to integers with ~9 decimal digits of
// fraction, leaving headroom for sums over thousands of parties in uint64
// arithmetic (mod 2^64).
const FixedPointScale = 1 << 30

// encodeFixed maps a float64 to the ring Z_{2^64} in two's-complement style.
func encodeFixed(x float64) uint64 {
	return uint64(int64(math.Round(x * FixedPointScale)))
}

// decodeFixed inverts encodeFixed on (possibly wrapped) ring elements.
func decodeFixed(v uint64) float64 {
	return float64(int64(v)) / FixedPointScale
}

// MaskedUpdate is a masked, fixed-point-encoded model update.
type MaskedUpdate struct {
	PartyID int
	Values  []uint64
}

// Party is one secure-aggregation participant with an X25519 key pair.
type Party struct {
	ID   int
	priv *ecdh.PrivateKey
}

// NewParty generates the party's key pair.
func NewParty(id int) (*Party, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: keygen: %w", err)
	}
	return &Party{ID: id, priv: priv}, nil
}

// PublicKey returns the party's key-agreement public key, which parties
// exchange through the aggregator (the aggregator learns nothing useful
// from public keys alone).
func (p *Party) PublicKey() []byte { return p.priv.PublicKey().Bytes() }

// maskSeed derives the pairwise mask seed from the X25519 shared secret.
func (p *Party) maskSeed(peerPub []byte) ([32]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: peer key: %w", err)
	}
	shared, err := p.priv.ECDH(pub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: ecdh: %w", err)
	}
	return sha256.Sum256(append([]byte("flips-secagg-v1"), shared...)), nil
}

// maskStream expands a seed into a deterministic stream of ring elements.
func maskStream(seed [32]byte, n int) []uint64 {
	out := make([]uint64, n)
	var counter uint64
	var block [8]byte
	h := seed
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(block[:], counter)
		d := sha256.Sum256(append(h[:], block[:]...))
		out[i] = binary.BigEndian.Uint64(d[:8])
		counter++
	}
	return out
}

// Peer identifies another participant in the aggregation round.
type Peer struct {
	ID        int
	PublicKey []byte
}

// Mask produces the party's masked update: the fixed-point encoding of
// update plus, for every peer, a pairwise mask added with sign determined by
// ID ordering so all masks cancel in the sum. update is typically already
// weighted by the party's aggregation weight.
func (p *Party) Mask(update []float64, peers []Peer) (*MaskedUpdate, error) {
	values := make([]uint64, len(update))
	for i, x := range update {
		values[i] = encodeFixed(x)
	}
	for _, peer := range peers {
		if peer.ID == p.ID {
			continue
		}
		seed, err := p.maskSeed(peer.PublicKey)
		if err != nil {
			return nil, fmt.Errorf("secagg: peer %d: %w", peer.ID, err)
		}
		mask := maskStream(seed, len(update))
		if p.ID < peer.ID {
			for i := range values {
				values[i] += mask[i]
			}
		} else {
			for i := range values {
				values[i] -= mask[i]
			}
		}
	}
	return &MaskedUpdate{PartyID: p.ID, Values: values}, nil
}

// Aggregate sums masked updates (the aggregator's only computation) and
// decodes the result. Every party that contributed a mask pair must be
// present, otherwise residual masks corrupt the sum — the dropout-recovery
// protocol of full secure aggregation is out of scope here, matching the
// paper's use of secure aggregation as a round primitive.
func Aggregate(updates []*MaskedUpdate, dim int) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("secagg: no updates")
	}
	sum := make([]uint64, dim)
	for _, u := range updates {
		if len(u.Values) != dim {
			return nil, fmt.Errorf("secagg: update from party %d has dim %d, want %d", u.PartyID, len(u.Values), dim)
		}
		for i, v := range u.Values {
			sum[i] += v
		}
	}
	out := make([]float64, dim)
	for i, v := range sum {
		out[i] = decodeFixed(v)
	}
	return out, nil
}
