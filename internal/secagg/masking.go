// Package secagg implements the secure-aggregation techniques the FLIPS
// paper surveys in §2.4 and proposes to combine with FLIPS in §8:
//
//   - pairwise additive masking (the core of practical secure aggregation,
//     Bonawitz et al. CCS'17): every pair of parties derives a shared mask
//     from a real X25519 key agreement; each party adds the mask with
//     opposite signs, so the masks cancel in the aggregate and the server
//     learns only the sum;
//   - Shamir secret sharing over GF(2^64) (shamir.go), which lets a cohort
//     escrow each member's mask-seed secret so the coordinator can
//     reconstruct exactly the masks of parties that drop mid-round — the
//     dropout-recovery half of the Bonawitz protocol, consumed by the fl
//     engine's privacy middleware;
//   - Paillier additively homomorphic encryption (Paillier '99), the
//     building block of BatchCrypt-style cross-silo FL, implemented on
//     math/big with the standard g = n+1 simplification.
//
// All of it operates on fixed-point encodings of float64 model updates in
// the ring Z_{2^64}. The comparison benchmark in bench_test.go reproduces
// the paper's §2.4 claim that HE costs two to three orders of magnitude more
// than hardware-assisted (TEE) aggregation.
package secagg

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// FixedPointScale converts floats to integers with ~9 decimal digits of
// fraction, leaving headroom for sums over thousands of parties in uint64
// arithmetic (mod 2^64).
const FixedPointScale = 1 << 30

// MaxSumMagnitude is the fixed-point headroom bound: a set of real values
// whose absolute values sum strictly below this encodes and folds in
// Z_{2^64} without wrapping past the int64 sign boundary. The encoding maps
// x to round(x·2^30) in two's complement, so the representable range is
// ±2^63 scaled units = ±2^33 real units; any partial sum of encodings whose
// real magnitude stays below 2^33 is exactly the encoding of the real sum
// (up to per-term rounding), while a sum at or beyond it wraps silently —
// decode returns a value of the wrong sign and magnitude with no error
// signal, which is why configs must be validated against this bound
// (CheckSumHeadroom) before any masked fold runs.
const MaxSumMagnitude = float64(1 << 33)

// two63 is 2^63 as a float64 (exactly representable); round(x·2^30) must be
// strictly below it and at least −2^63 for the int64 conversion in
// EncodeFixed to be defined.
var two63 = math.Ldexp(1, 63)

// EncodeFixed maps a float64 to the ring Z_{2^64} in two's-complement
// style. It rejects non-finite inputs — Go's float→int conversion of NaN or
// ±Inf is implementation-specific, so a NaN here would silently poison the
// whole masked sum — and values whose scaled magnitude falls outside int64,
// mirroring the fl engine's admitUpdate finiteness gate at the encode
// boundary.
func EncodeFixed(x float64) (uint64, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("secagg: cannot encode non-finite value %v", x)
	}
	scaled := math.Round(x * FixedPointScale)
	if scaled >= two63 || scaled < -two63 {
		return 0, fmt.Errorf("secagg: value %v overflows the fixed-point range ±2^33", x)
	}
	return uint64(int64(scaled)), nil
}

// DecodeFixed inverts EncodeFixed on (possibly wrapped) ring elements.
func DecodeFixed(v uint64) float64 {
	return float64(int64(v)) / FixedPointScale
}

// CheckSumHeadroom validates that a fold whose summed absolute real
// magnitude is bounded by sumMag cannot wrap the fixed-point ring. sumMag
// is typically (total aggregation weight) × (per-coordinate update bound):
// with per-update L2 clipping at C and FedAvg weights w_i, every coordinate
// of the weighted sum is bounded by C·Σw_i.
func CheckSumHeadroom(sumMag float64) error {
	if math.IsNaN(sumMag) || sumMag < 0 {
		return fmt.Errorf("secagg: invalid sum magnitude bound %v", sumMag)
	}
	if sumMag >= MaxSumMagnitude {
		return fmt.Errorf("secagg: sum magnitude bound %.4g exceeds the fixed-point headroom %.4g (weight × clip too large: the masked sum would wrap in Z_{2^64})",
			sumMag, MaxSumMagnitude)
	}
	return nil
}

// DeriveSecret deterministically derives party id's X25519 secret scalar
// from the run seed. Simulation stand-in for each party generating its own
// key: the whole run stays a pure function of the seed, which is what keeps
// masked runs bit-identical at every parallelism and shard count. X25519
// clamps the scalar during multiplication, so any 32 bytes are a valid
// private key.
func DeriveSecret(seed uint64, id int) [32]byte {
	var buf [35]byte
	copy(buf[:19], "flips-secagg-key-v2")
	binary.LittleEndian.PutUint64(buf[19:27], seed)
	binary.LittleEndian.PutUint64(buf[27:35], uint64(id))
	return sha256.Sum256(buf[:])
}

// PrivateKeyFromSecret wraps a derived secret scalar as an X25519 private
// key.
func PrivateKeyFromSecret(secret *[32]byte) (*ecdh.PrivateKey, error) {
	priv, err := ecdh.X25519().NewPrivateKey(secret[:])
	if err != nil {
		return nil, fmt.Errorf("secagg: secret scalar: %w", err)
	}
	return priv, nil
}

// PairSeed derives the pairwise mask seed for (priv's party, peer) from the
// X25519 shared secret. Symmetric: both ends of the pair derive the same
// seed.
func PairSeed(priv *ecdh.PrivateKey, peer *ecdh.PublicKey) ([32]byte, error) {
	shared, err := priv.ECDH(peer)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: ecdh: %w", err)
	}
	var buf [52]byte
	copy(buf[:20], "flips-secagg-pair-v2")
	copy(buf[20:], shared)
	return sha256.Sum256(buf[:]), nil
}

// AddPairMask adds (negate=false) or subtracts (negate=true) the pairwise
// mask stream identified by (seed, tag) into acc over the coordinate range
// [lo, hi). acc is indexed absolutely, so parameter-axis shards can expand
// disjoint ranges of the same logical stream concurrently: the mask word
// for coordinate c is a pure function of (seed, tag, c) — sha256 over a
// stack buffer, four 64-bit words per hash — independent of range
// boundaries. tag is the wave/round counter, giving every aggregation wave
// a fresh stream from the same pair seed. Allocation-free.
func AddPairMask(acc []uint64, seed *[32]byte, tag uint64, lo, hi int, negate bool) {
	if lo < 0 || hi > len(acc) || lo >= hi {
		if lo >= hi {
			return
		}
		panic(fmt.Sprintf("secagg: mask range [%d,%d) outside acc len %d", lo, hi, len(acc)))
	}
	var buf [48]byte
	copy(buf[:32], seed[:])
	binary.LittleEndian.PutUint64(buf[32:40], tag)
	for blk := lo >> 2; blk <= (hi-1)>>2; blk++ {
		binary.LittleEndian.PutUint64(buf[40:48], uint64(blk))
		d := sha256.Sum256(buf[:])
		base := blk << 2
		for w := 0; w < 4; w++ {
			c := base + w
			if c < lo || c >= hi {
				continue
			}
			m := binary.LittleEndian.Uint64(d[w*8 : w*8+8])
			if negate {
				acc[c] -= m
			} else {
				acc[c] += m
			}
		}
	}
}

// MaskedUpdate is a masked, fixed-point-encoded model update.
type MaskedUpdate struct {
	PartyID int
	Values  []uint64
}

// Party is one secure-aggregation participant with an X25519 key pair.
type Party struct {
	ID   int
	priv *ecdh.PrivateKey
}

// NewParty generates the party's key pair from the system entropy source
// (the decentralized-aggregation path; the fl engine's privacy middleware
// derives keys deterministically via DeriveSecret instead).
func NewParty(id int) (*Party, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: keygen: %w", err)
	}
	return &Party{ID: id, priv: priv}, nil
}

// PublicKey returns the party's key-agreement public key, which parties
// exchange through the aggregator (the aggregator learns nothing useful
// from public keys alone).
func (p *Party) PublicKey() []byte { return p.priv.PublicKey().Bytes() }

// maskSeed derives the pairwise mask seed from the X25519 shared secret.
func (p *Party) maskSeed(peerPub []byte) ([32]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: peer key: %w", err)
	}
	shared, err := p.priv.ECDH(pub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: ecdh: %w", err)
	}
	return sha256.Sum256(append([]byte("flips-secagg-v1"), shared...)), nil
}

// maskStream expands a seed into a deterministic stream of ring elements.
func maskStream(seed [32]byte, n int) []uint64 {
	out := make([]uint64, n)
	var counter uint64
	var block [8]byte
	h := seed
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(block[:], counter)
		d := sha256.Sum256(append(h[:], block[:]...))
		out[i] = binary.BigEndian.Uint64(d[:8])
		counter++
	}
	return out
}

// Peer identifies another participant in the aggregation round.
type Peer struct {
	ID        int
	PublicKey []byte
}

// Mask produces the party's masked update: the fixed-point encoding of
// update plus, for every peer, a pairwise mask added with sign determined by
// ID ordering so all masks cancel in the sum. update is typically already
// weighted by the party's aggregation weight. A non-finite or out-of-range
// value anywhere in update is an error: it cannot be encoded, so the party
// must drop out of the round rather than upload a poisoned vector.
func (p *Party) Mask(update []float64, peers []Peer) (*MaskedUpdate, error) {
	values := make([]uint64, len(update))
	for i, x := range update {
		v, err := EncodeFixed(x)
		if err != nil {
			return nil, fmt.Errorf("secagg: party %d coordinate %d: %w", p.ID, i, err)
		}
		values[i] = v
	}
	for _, peer := range peers {
		if peer.ID == p.ID {
			continue
		}
		seed, err := p.maskSeed(peer.PublicKey)
		if err != nil {
			return nil, fmt.Errorf("secagg: peer %d: %w", peer.ID, err)
		}
		mask := maskStream(seed, len(update))
		if p.ID < peer.ID {
			for i := range values {
				values[i] += mask[i]
			}
		} else {
			for i := range values {
				values[i] -= mask[i]
			}
		}
	}
	return &MaskedUpdate{PartyID: p.ID, Values: values}, nil
}

// Aggregate sums masked updates (the aggregator's only computation) and
// decodes the result. Every party that contributed a mask pair must be
// present, otherwise residual masks corrupt the sum — dropout recovery
// (Shamir-escrowed seeds, shamir.go) lives in the fl engine's privacy
// middleware, which reconstructs missing masks before this decode step.
func Aggregate(updates []*MaskedUpdate, dim int) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("secagg: no updates")
	}
	sum := make([]uint64, dim)
	for _, u := range updates {
		if len(u.Values) != dim {
			return nil, fmt.Errorf("secagg: update from party %d has dim %d, want %d", u.PartyID, len(u.Values), dim)
		}
		for i, v := range u.Values {
			sum[i] += v
		}
	}
	out := make([]float64, dim)
	for i, v := range sum {
		out[i] = DecodeFixed(v)
	}
	return out, nil
}
