#!/usr/bin/env bash
# SLO smoke for the flipsd job server. Two phases, both against freshly
# built binaries and the SLO values checked into .github/slo.env:
#
#   1. Load run: flipsload fires SLO_JOBS jobs from SLO_CONCURRENCY
#      concurrent submitters and gates on the p99 latency ceiling and the
#      arrivals/sec floor; /metrics must expose the queue depth and p99
#      series while the server is up.
#   2. Drain: the same load is fired again and flipsd gets SIGTERM while
#      jobs are still queued and running. flipsd exits non-zero if its
#      drain summary loses a job; flipsload exits non-zero if any accepted
#      job's outcome was never observed. Both must exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

. .github/slo.env

ADDR=127.0.0.1:18080
BIN=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$BIN/flipsd" ./cmd/flipsd
go build -o "$BIN/flipsload" ./cmd/flipsload

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "flipsd never came up" >&2
  return 1
}

echo "== phase 1: SLO-gated load run =="
"$BIN/flipsd" -listen "$ADDR" -queue "$SLO_QUEUE" -workers "$SLO_WORKERS" &
FLIPSD=$!
wait_up
"$BIN/flipsload" -addr "http://$ADDR" \
  -jobs "$SLO_JOBS" -concurrency "$SLO_CONCURRENCY" \
  -slo-p99 "$SLO_P99" -slo-arrivals "$SLO_ARRIVALS"
curl -fsS "http://$ADDR/metrics" | tee "$BIN/metrics.txt"
grep -q '^flipsd_queue_depth ' "$BIN/metrics.txt"
grep -q 'flipsd_job_latency_seconds{quantile="0.99"}' "$BIN/metrics.txt"
kill -TERM "$FLIPSD"
wait "$FLIPSD"

echo "== phase 2: no-lost-jobs drain under concurrent load =="
"$BIN/flipsd" -listen "$ADDR" -queue "$SLO_QUEUE" -workers "$SLO_WORKERS" &
FLIPSD=$!
wait_up
"$BIN/flipsload" -addr "http://$ADDR" \
  -jobs "$DRAIN_JOBS" -concurrency "$SLO_CONCURRENCY" &
LOAD=$!
sleep "$DRAIN_AFTER_SECONDS"
kill -TERM "$FLIPSD"
wait "$FLIPSD" # non-zero if the drain summary lost a job
wait "$LOAD"   # non-zero if an accepted job failed or was never observed
echo "SLO smoke ok"
