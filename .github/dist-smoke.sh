#!/usr/bin/env bash
# Distributed-aggregation smoke for the flipsd shard-worker seam: boot the
# job server with its worker coordinator, attach two separate flipsd worker
# processes, run a 10k-party job whose local training crosses the process
# boundary, and check the full lifecycle:
#
#   1. The job completes (state "done") with training distributed across
#      both workers.
#   2. /metrics exposes the registration gauge and the per-worker slot
#      series (connectivity, waves, lag, byte counters).
#   3. SIGTERM drains without losing a job, and the coordinator's shutdown
#      frames release both workers with exit code 0.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18084
DIST=127.0.0.1:18094
BIN=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$BIN/flipsd" ./cmd/flipsd

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "flipsd never came up" >&2
  return 1
}

"$BIN/flipsd" -listen "$ADDR" -dist-listen "$DIST" -dist-workers 2 -queue 8 -workers 1 &
FLIPSD=$!
wait_up

"$BIN/flipsd" -worker -connect "$DIST" -parallel 2 &
W1=$!
"$BIN/flipsd" -worker -connect "$DIST" -parallel 2 &
W2=$!

echo "== submit a 10k-party job across the worker fleet =="
ID=$(curl -fsS -X POST "http://$ADDR/jobs" -H 'Content-Type: application/json' \
  -d '{"Dataset":"mit-bih-ecg","Strategy":"random","Parties":10000,"Rounds":4,"Seed":7}' |
  grep -o '"ID":"[^"]*"' | head -1 | cut -d'"' -f4)
test -n "$ID"

STATE=""
for _ in $(seq 1 600); do
  STATE=$(curl -fsS "http://$ADDR/jobs/$ID" | grep -o '"State":"[^"]*"' | head -1 | cut -d'"' -f4)
  if [ "$STATE" = "done" ]; then break; fi
  if [ "$STATE" = "failed" ]; then
    echo "job failed:" >&2
    curl -fsS "http://$ADDR/jobs/$ID" >&2
    exit 1
  fi
  sleep 0.5
done
test "$STATE" = "done"

echo "== per-worker series on /metrics =="
curl -fsS "http://$ADDR/metrics" | tee "$BIN/metrics.txt" >/dev/null
grep -q '^flipsd_dist_workers_registered 2$' "$BIN/metrics.txt"
grep -q 'flipsd_dist_worker_connected{' "$BIN/metrics.txt"
grep -q 'flipsd_dist_worker_waves_total{' "$BIN/metrics.txt"
grep -q 'flipsd_dist_worker_lag_waves{' "$BIN/metrics.txt"
grep -q 'flipsd_dist_worker_bytes_in_total{' "$BIN/metrics.txt"
grep -q 'flipsd_dist_worker_bytes_out_total{' "$BIN/metrics.txt"

echo "== drain: no lost jobs, workers released cleanly =="
kill -TERM "$FLIPSD"
wait "$FLIPSD" # non-zero if the drain summary lost a job
wait "$W1"     # non-zero unless the shutdown frame released the worker
wait "$W2"
echo "dist smoke ok"
