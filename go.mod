module flips

go 1.22
