package flips

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"flips/internal/dataset"
	"flips/internal/experiment"
)

func groupedLabelDists(groups, perGroup, labels int) [][]float64 {
	out := make([][]float64, 0, groups*perGroup)
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			ld := make([]float64, labels)
			ld[g%labels] = 100 + float64(i)
			ld[(g+1)%labels] = 2
			out = append(out, ld)
		}
	}
	return out
}

func TestNewMiddlewareClustersAndSelects(t *testing.T) {
	lds := groupedLabelDists(3, 8, 5)
	m, err := NewMiddleware(lds, MiddlewareOptions{Seed: 1, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	n, err := m.NumClusters()
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 5 {
		t.Fatalf("found %d clusters", n)
	}
	sel, err := m.SelectParticipants(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 6 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, id := range sel {
		if id < 0 || id >= len(lds) || seen[id] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[id] = true
	}
}

func TestNewMiddlewareRejectsEmpty(t *testing.T) {
	if _, err := NewMiddleware(nil, MiddlewareOptions{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := NewPrivateMiddleware(nil, MiddlewareOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMiddlewareReportRoundOverprovisions(t *testing.T) {
	lds := groupedLabelDists(2, 6, 4)
	m, err := NewMiddleware(lds, MiddlewareOptions{Seed: 2, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.SelectParticipants(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ReportRound(0, sel, sel[2:], sel[:2]); err != nil {
		t.Fatal(err)
	}
	next, err := m.SelectParticipants(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) <= 4 {
		t.Fatalf("no over-provisioning: %d", len(next))
	}
}

func TestPrivateMiddlewareEndToEnd(t *testing.T) {
	lds := groupedLabelDists(3, 6, 5)
	m, err := NewPrivateMiddleware(lds, MiddlewareOptions{Seed: 3, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.NumClusters()
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("TEE clustering found %d clusters", n)
	}
	sel, err := m.SelectParticipants(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 6 {
		t.Fatalf("selected %d", len(sel))
	}
	if err := m.ReportRound(0, sel, sel, nil); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.SelectParticipants(1, 6); err == nil {
		t.Fatal("selection succeeded after Close (TEE wipe)")
	}
}

func TestRunSimulationDefaults(t *testing.T) {
	res, err := RunSimulation(SimulationConfig{
		Dataset: "mit-bih-ecg",
		Rounds:  8,
		Parties: 24,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	if res.NumClusters == 0 {
		t.Fatal("default FLIPS strategy should report clusters")
	}
	if res.TotalCommBytes <= 0 {
		t.Fatal("no communication accounted")
	}
	if res.TargetAccuracy != 0.65 {
		t.Fatalf("target %v", res.TargetAccuracy)
	}
}

// TestRunSimulationStreamMatchesHistory pins the streaming surface: the
// hook must observe exactly the rounds the final history reports, in order,
// with identical values.
func TestRunSimulationStreamMatchesHistory(t *testing.T) {
	var streamed []RoundPoint
	res, err := RunSimulationStream(SimulationConfig{
		Dataset: "mit-bih-ecg",
		Rounds:  8,
		Parties: 24,
		Seed:    5,
	}, func(p RoundPoint) {
		p.PerLabel = append([]float64(nil), p.PerLabel...)
		streamed = append(streamed, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.History) {
		t.Fatalf("streamed %d rounds, history has %d", len(streamed), len(res.History))
	}
	for i, p := range streamed {
		h := res.History[i]
		if p.Round != h.Round || p.Accuracy != h.Accuracy || p.SimTime != h.SimTime ||
			p.Invited != h.Invited || p.Completed != h.Completed {
			t.Fatalf("streamed round %d = %+v, history %+v", i, p, h)
		}
	}
}

func TestValidateRejectsBadConfigsWithoutRunning(t *testing.T) {
	if err := (SimulationConfig{Dataset: "mit-bih-ecg", Rounds: 4, Parties: 8}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, cfg := range []SimulationConfig{
		{Dataset: "cifar-zillion"},
		{Dataset: "mit-bih-ecg", Aggregation: "bogus"},
		{Dataset: "mit-bih-ecg", Strategy: "psychic"},
		{Dataset: "mit-bih-ecg", DeviceProfile: "quantum"},
		{Dataset: "mit-bih-ecg", Fold: "geometric"},
		{Dataset: "mit-bih-ecg", FaultModel: "gremlins"},
		{Dataset: "mit-bih-ecg", FaultModel: "byzantine"}, // no FaultFraction
		{Dataset: "mit-bih-ecg", FaultFraction: 0.2},      // no FaultModel
		{Dataset: "mit-bih-ecg", FaultModel: "byzantine", FaultFraction: 2},
		{Dataset: "mit-bih-ecg", Mask: true, Fold: "median"},      // masking needs the mean fold
		{Dataset: "mit-bih-ecg", Mask: true, Algorithm: "feddyn"}, // masking excludes FedDyn state
		{Dataset: "mit-bih-ecg", Epsilon: 2},                      // DP noise needs a clip bound
		{Dataset: "mit-bih-ecg", ShareThreshold: 3},               // threshold is meaningless unmasked
		{Dataset: "mit-bih-ecg", Mask: true, Clip: 1 << 40},       // clip overflows fixed-point headroom
	} {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v validated", cfg)
		}
	}
	// Masking alone is legal and Validate fills the default clip bound.
	if err := (SimulationConfig{Dataset: "mit-bih-ecg", Rounds: 4, Parties: 8, Mask: true}).Validate(); err != nil {
		t.Fatalf("masked config rejected: %v", err)
	}
}

// TestRunSimulationMasked pins the public secure-aggregation surface: a
// masked run over a churn fleet converges like its plaintext twin (the
// pairwise masks cancel in the cohort sum; dropout masks are reconstructed
// from Shamir shares), and MaskAborted is surfaced per round.
func TestRunSimulationMasked(t *testing.T) {
	mk := func(mask bool) SimulationConfig {
		return SimulationConfig{
			Dataset:        "mit-bih-ecg",
			DeviceProfile:  "lognormal",
			Availability:   "churn",
			Deadline:       3,
			Rounds:         10,
			Parties:        24,
			Mask:           mask,
			ShareThreshold: 2,
			Seed:           5,
		}
	}
	masked, err := RunSimulation(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	plainCfg := mk(false)
	plainCfg.ShareThreshold = 0
	plain, err := RunSimulation(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	dropouts := 0
	for _, h := range masked.History {
		if h.MaskAborted {
			continue
		}
		dropouts += h.Invited - h.Completed
	}
	if dropouts == 0 {
		t.Fatal("churn fleet produced no dropouts; the reconstruction path was not exercised")
	}
	// Fixed-point quantization perturbs each fold by ~2^-30 per coordinate;
	// over a short run the trajectories stay close, and the headline metric
	// must agree. (The masked run also clips at the default bound of 1, but
	// these deltas sit well inside it.)
	if masked.PeakAccuracy < plain.PeakAccuracy-0.02 {
		t.Fatalf("masked peak %.4f trails plaintext %.4f", masked.PeakAccuracy, plain.PeakAccuracy)
	}
}

func TestRunSimulationUnknownDataset(t *testing.T) {
	if _, err := RunSimulation(SimulationConfig{Dataset: "cifar-zillion"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunSimulationAllStrategies(t *testing.T) {
	for _, strategy := range Strategies() {
		res, err := RunSimulation(SimulationConfig{
			Dataset:  "fashion-mnist",
			Strategy: strategy,
			Rounds:   4,
			Parties:  20,
			Seed:     7,
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if res.PeakAccuracy <= 0 {
			t.Fatalf("%s: peak %v", strategy, res.PeakAccuracy)
		}
	}
}

func TestRunTableWritesTable(t *testing.T) {
	var buf bytes.Buffer
	// Table 23 = fashion-mnist fedavg rounds (cheapest dataset at low scale
	// thanks to the halved budget); run it at laptop scale but overridden by
	// the small default? RunTable has no scale override, so pick laptop.
	if testing.Short() {
		t.Skip("full table at laptop scale")
	}
	if err := RunTable(&buf, 23, false, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 23") || !strings.Contains(out, "fashion-mnist") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestRunTableRejectsBadID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable(&buf, 99, false, 1); err == nil {
		t.Fatal("bad table id accepted")
	}
}

func TestRunFigureRejectsBadID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigure(&buf, "fig-nope", false, 1); err == nil {
		t.Fatal("bad figure id accepted")
	}
}

func TestRunTournamentWritesRanking(t *testing.T) {
	var buf bytes.Buffer
	err := RunTournament(&buf, TournamentConfig{
		Selectors: []string{"random", "loss-prop"},
		Rounds:    6,
		Parties:   16,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Selector tournament") || !strings.Contains(out, "clean arm reached by") {
		t.Fatalf("tournament output:\n%s", out)
	}
	if err := RunTournament(&buf, TournamentConfig{Selectors: []string{"nope"}}); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

func TestDatasetAndStrategyLists(t *testing.T) {
	if len(Datasets()) != 4 {
		t.Fatalf("datasets %v", Datasets())
	}
	if len(Strategies()) != 13 {
		t.Fatalf("strategies %v", Strategies())
	}
}

// TestMiddlewareConcurrentRounds exercises the middleware the way an
// embedding FL system with concurrent aggregator goroutines would: many
// goroutines interleaving SelectParticipants, ReportRound and NumClusters on
// one Middleware. Run with -race, this is the regression gate for the
// documented "safe for concurrent use" contract.
func TestMiddlewareConcurrentRounds(t *testing.T) {
	t.Parallel()
	lds := groupedLabelDists(3, 8, 5)
	m, err := NewMiddleware(lds, MiddlewareOptions{Seed: 9, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const goroutines = 8
	const roundsPer = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < roundsPer; r++ {
				round := g*roundsPer + r
				sel, err := m.SelectParticipants(round, 6)
				if err != nil {
					errs <- err
					return
				}
				if len(sel) < 6 {
					errs <- fmt.Errorf("round %d selected %d parties", round, len(sel))
					return
				}
				// Report a third of the selection as stragglers so the
				// adaptive over-provisioning state is exercised too.
				cut := len(sel) / 3
				if err := m.ReportRound(round, sel, sel[cut:], sel[:cut]); err != nil {
					errs <- err
					return
				}
				if _, err := m.NumClusters(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRunGridShortScale is the reduced-scale short-mode stand-in for
// TestRunTableWritesTable: the same grid-and-render path at a scale that
// finishes in well under a second.
func TestRunGridShortScale(t *testing.T) {
	t.Parallel()
	scale := experiment.Scale{Parties: 16, Rounds: 6, TrainSize: 800, TestSize: 200, Repeats: 1, EvalEvery: 3}
	grid, err := experiment.RunGrid(dataset.FashionMNIST(), experiment.AlgoFedAvg, scale, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, peak := grid.Tables()
	grid.RenderTable(&buf, peak)
	out := buf.String()
	if !strings.Contains(out, "Table 24") || !strings.Contains(out, "fashion-mnist") {
		t.Fatalf("table output:\n%s", out)
	}
}

// TestRunSimulationParallelismKnob checks the public Parallelism knob is
// honored end to end: parallel and sequential simulations of one seed agree
// on every reported number.
func TestRunSimulationParallelismKnob(t *testing.T) {
	t.Parallel()
	run := func(par int) *SimulationResult {
		res, err := RunSimulation(SimulationConfig{
			Dataset:     "mit-bih-ecg",
			Rounds:      6,
			Parties:     20,
			Parallelism: par,
			Seed:        13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if len(seq.History) != len(par.History) {
		t.Fatalf("history lengths %d vs %d", len(seq.History), len(par.History))
	}
	for i := range seq.History {
		if math.Float64bits(seq.History[i].Accuracy) != math.Float64bits(par.History[i].Accuracy) {
			t.Fatalf("round %d accuracy %v vs %v", seq.History[i].Round, seq.History[i].Accuracy, par.History[i].Accuracy)
		}
		if seq.History[i].CommBytes != par.History[i].CommBytes {
			t.Fatalf("round %d comm bytes differ", seq.History[i].Round)
		}
	}
	if math.Float64bits(seq.PeakAccuracy) != math.Float64bits(par.PeakAccuracy) ||
		seq.RoundsToTarget != par.RoundsToTarget ||
		seq.TotalCommBytes != par.TotalCommBytes {
		t.Fatalf("summaries diverge: %+v vs %+v", seq, par)
	}
}

// TestRunSimulationDeviceModel drives the device heterogeneity simulator
// through the public API: a lognormal fleet under churn with a deadline must
// produce simulated time, and the same config must be bit-reproducible with
// the simulated clock intact across parallelism widths.
func TestRunSimulationDeviceModel(t *testing.T) {
	t.Parallel()
	run := func(par int) *SimulationResult {
		res, err := RunSimulation(SimulationConfig{
			Dataset:       "mit-bih-ecg",
			DeviceProfile: "lognormal",
			Availability:  "churn",
			Deadline:      2,
			Rounds:        6,
			Parties:       20,
			Parallelism:   par,
			Seed:          17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if seq.SimTime <= 0 {
		t.Fatalf("device simulation accumulated no time: %+v", seq)
	}
	if math.Float64bits(seq.SimTime) != math.Float64bits(par.SimTime) ||
		math.Float64bits(seq.TimeToTarget) != math.Float64bits(par.TimeToTarget) {
		t.Fatalf("simulated clock diverges across widths: %+v vs %+v", seq, par)
	}
	var prev float64
	for _, h := range seq.History {
		if h.SimTime < prev {
			t.Fatalf("SimTime not monotone at round %d", h.Round)
		}
		prev = h.SimTime
	}
}

func TestRunSimulationDeviceValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunSimulation(SimulationConfig{Dataset: "mit-bih-ecg", DeviceProfile: "quantum"}); err == nil {
		t.Fatal("unknown device profile accepted")
	}
	if _, err := RunSimulation(SimulationConfig{Dataset: "mit-bih-ecg", Availability: "churn"}); err == nil {
		t.Fatal("availability without device profile accepted")
	}
	if _, err := RunSimulation(SimulationConfig{Dataset: "mit-bih-ecg", Deadline: 5}); err == nil {
		t.Fatal("deadline without device profile accepted")
	}
	if _, err := RunSimulation(SimulationConfig{Dataset: "mit-bih-ecg", DeviceProfile: "uniform", Availability: "sometimes"}); err == nil {
		t.Fatal("unknown availability accepted")
	}
}

// TestRunSimulationAggregationModes runs the public API through all three
// execution models and pins the cross-width determinism of the event clock.
func TestRunSimulationAggregationModes(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		aggregation string
		deadline    float64
	}{
		{"sync", 0},
		{"buffered", 0},
		{"semisync", 1},
	} {
		run := func(par int) *SimulationResult {
			res, err := RunSimulation(SimulationConfig{
				Dataset:       "mit-bih-ecg",
				DeviceProfile: "lognormal",
				Availability:  "churn",
				Aggregation:   tc.aggregation,
				Deadline:      tc.deadline,
				Rounds:        6,
				Parties:       20,
				Parallelism:   par,
				Seed:          23,
			})
			if err != nil {
				t.Fatalf("%s: %v", tc.aggregation, err)
			}
			return res
		}
		seq, par := run(1), run(8)
		if seq.SimTime <= 0 {
			t.Fatalf("%s accumulated no simulated time", tc.aggregation)
		}
		if math.Float64bits(seq.SimTime) != math.Float64bits(par.SimTime) ||
			math.Float64bits(seq.PeakAccuracy) != math.Float64bits(par.PeakAccuracy) {
			t.Fatalf("%s diverges across widths: %+v vs %+v", tc.aggregation, seq, par)
		}
	}
}

// TestRunSimulationAggregationValidation pins the public-surface rejections
// of inconsistent async configurations.
func TestRunSimulationAggregationValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunSimulation(SimulationConfig{Dataset: "mit-bih-ecg", Aggregation: "bogus"}); err == nil {
		t.Fatal("unknown aggregation accepted")
	}
	if _, err := RunSimulation(SimulationConfig{Dataset: "mit-bih-ecg", Aggregation: "semisync"}); err == nil {
		t.Fatal("semisync without deadline accepted")
	}
	if _, err := RunSimulation(SimulationConfig{
		Dataset: "mit-bih-ecg", DeviceProfile: "lognormal", Aggregation: "buffered", Deadline: 2,
	}); err == nil {
		t.Fatal("buffered with deadline accepted")
	}
	// Semi-sync windows are legal on the legacy (device-less) clock.
	if _, err := RunSimulation(SimulationConfig{
		Dataset: "mit-bih-ecg", Aggregation: "semisync", Deadline: 4, Rounds: 4, Parties: 12,
	}); err != nil {
		t.Fatalf("legacy-clock semisync rejected: %v", err)
	}
}

// TestRunAsyncWritesTable smoke-tests the public aggregation-mode sweep
// entry point.
// TestRunSimulationRobustFoldUnderFaults drives the chaos seam through the
// public API: a byzantine minority with a coordinate-wise median fold must
// run to completion, stay bit-reproducible across parallelism widths, and
// beat the plain mean under the same attack.
func TestRunSimulationRobustFoldUnderFaults(t *testing.T) {
	t.Parallel()
	run := func(fold string, par int) *SimulationResult {
		res, err := RunSimulation(SimulationConfig{
			Dataset:       "mit-bih-ecg",
			Algorithm:     "fedavg",
			Strategy:      "random",
			Fold:          fold,
			FaultModel:    "byzantine",
			FaultFraction: 0.25,
			Rounds:        8,
			Parties:       16,
			Parallelism:   par,
			Seed:          9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run("median", 1), run("median", 8)
	if len(seq.History) == 0 || seq.PeakAccuracy <= 0 || seq.PeakAccuracy > 1 {
		t.Fatalf("degenerate result: %+v", seq)
	}
	if math.Float64bits(seq.PeakAccuracy) != math.Float64bits(par.PeakAccuracy) {
		t.Fatalf("faulty run diverges across widths: %v vs %v", seq.PeakAccuracy, par.PeakAccuracy)
	}
	mean := run("", 1)
	if seq.PeakAccuracy <= mean.PeakAccuracy {
		t.Fatalf("median peak %.3f should beat mean peak %.3f under byzantine corruption",
			seq.PeakAccuracy, mean.PeakAccuracy)
	}
}

func TestRunChaosWritesTable(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("chaos sweep runs the full fault matrix at laptop scale")
	}
	var buf bytes.Buffer
	if err := RunChaos(&buf, false, 3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Chaos fault-matrix sweep", "byzantine-20", "krum", "clean"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunAsyncWritesTable(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("async sweep is a multi-second run at laptop scale")
	}
	var buf bytes.Buffer
	if err := RunAsync(&buf, false, 3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Aggregation-mode sweep", "buffered H=1", "semisync H=4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunHeterogeneityWritesTable smoke-tests the public sweep entry point
// at a reduced scale via the short-mode path of the underlying runner.
func TestRunHeterogeneityWritesTable(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("het sweep is a multi-second run at laptop scale")
	}
	var buf bytes.Buffer
	if err := RunHeterogeneity(&buf, false, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "time to attain target accuracy") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
