package flips

import (
	"encoding/json"
	"fmt"
	"sync"

	"flips/internal/dist"
	"flips/internal/experiment"
	"flips/internal/fl"
)

// DistWorkerBuilder returns the dist.Builder a flipsd shard-worker process
// serves jobs with: the job spec is the coordinator's SimulationConfig JSON,
// and the worker rebuilds exactly the coordinator's fleet from it —
// experiment.Build is deterministic in (setting, scale) — then keeps only its
// assigned [lo, hi) party range. The slice is copied onto a fresh backing
// array so the rest of the fleet is collectable.
func DistWorkerBuilder() dist.Builder {
	return func(spec []byte, lo, hi int) (dist.JobSetup, error) {
		var cfg SimulationConfig
		if err := json.Unmarshal(spec, &cfg); err != nil {
			return dist.JobSetup{}, fmt.Errorf("flips: decode job spec: %w", err)
		}
		built, _, err := distBuild(cfg)
		if err != nil {
			return dist.JobSetup{}, err
		}
		if hi > len(built.Parties) {
			return dist.JobSetup{}, fmt.Errorf("flips: shard range [%d,%d) exceeds %d-party fleet", lo, hi, len(built.Parties))
		}
		return dist.JobSetup{
			Parties: append([]*fl.Party(nil), built.Parties[lo:hi]...),
			Factory: built.Config.Factory,
		}, nil
	}
}

// distBuild is the shared coordinator/worker build path for distributed jobs:
// resolve the config and build the fleet with repeats pinned to one. The
// repeat loop re-seeds per repeat, so a multi-repeat distributed job would
// hand workers a fleet built from the wrong seed; a distributed run is always
// a single repeat of the exact spec both sides share.
func distBuild(cfg SimulationConfig) (*experiment.BuildResult, experiment.Scale, error) {
	setting, scale, err := cfg.resolve()
	if err != nil {
		return nil, experiment.Scale{}, err
	}
	scale.Repeats = 1
	built, err := experiment.Build(setting, scale)
	if err != nil {
		return nil, experiment.Scale{}, err
	}
	return built, scale, nil
}

// DistRunner runs simulation jobs with local training distributed across the
// coordinator's shard-worker processes. Its Run method matches the job
// server's runner signature, so flipsd swaps it in for the in-process path
// when workers are configured; results are byte-identical either way (see
// DESIGN.md, "Distributed aggregation").
type DistRunner struct {
	// Coord is the listening worker coordinator.
	Coord *dist.Coordinator
	// Workers is how many shard slots each job partitions its party space
	// across (clamped to the party count per job).
	Workers int

	mu     sync.Mutex
	jobSeq uint64
	jobs   map[*distJob]struct{}
	recent []*distJob
}

type distJob struct {
	id    uint64
	job   *dist.Job
	final []dist.WorkerStat
}

// retainedJobStats bounds how many finished jobs keep their final slot
// snapshot visible in WorkerStats — sized so a metrics scrape after a short
// job still sees its per-worker series.
const retainedJobStats = 4

// Run executes one job over the worker fleet. The party space is split into
// Workers contiguous shard ranges, each assigned to a claimed worker; the
// coordinator keeps every other stage of the round — device simulation,
// chaos, privacy, folds, server optimization, evaluation — so the result is
// byte-identical to the in-process engine at any worker count.
func (r *DistRunner) Run(cfg SimulationConfig, onRound func(RoundPoint)) (*SimulationResult, error) {
	if r.Coord == nil || r.Workers <= 0 {
		return nil, fmt.Errorf("flips: distributed runner needs a coordinator and a positive worker count")
	}
	built, scale, err := distBuild(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("flips: encode job spec: %w", err)
	}
	job, err := dist.NewJob(r.Coord, spec, scale.Parties, r.Workers)
	if err != nil {
		return nil, err
	}
	defer job.Close()
	handle := r.track(job)
	defer r.untrack(handle)

	built.Config.Transport = job
	if onRound != nil {
		built.Config.OnRound = func(h fl.RoundStats) { onRound(roundPoint(h)) }
	}
	res, err := fl.Run(built.Config)
	if err != nil {
		return nil, err
	}
	out := &SimulationResult{
		PeakAccuracy:   res.PeakAccuracy,
		RoundsToTarget: res.RoundsToTarget,
		TimeToTarget:   res.TimeToTarget,
		SimTime:        res.SimTime,
		TargetAccuracy: built.Config.TargetAccuracy,
		TotalCommBytes: res.TotalCommBytes,
		NumClusters:    len(built.Clusters),
	}
	for _, h := range res.History {
		out.History = append(out.History, roundPoint(h))
	}
	return out, nil
}

// WorkerStats snapshots every active job's shard slots, tagged with a stable
// per-runner job sequence number, plus the final snapshots of the last few
// finished jobs — so a metrics scrape right after a short job still sees its
// per-worker series. The job server surfaces this on /metrics.
func (r *DistRunner) WorkerStats() map[uint64][]dist.WorkerStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint64][]dist.WorkerStat, len(r.jobs)+len(r.recent))
	for _, h := range r.recent {
		out[h.id] = h.final
	}
	for h := range r.jobs {
		out[h.id] = h.job.Stats()
	}
	return out
}

func (r *DistRunner) track(job *dist.Job) *distJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jobs == nil {
		r.jobs = make(map[*distJob]struct{})
	}
	r.jobSeq++
	h := &distJob{id: r.jobSeq, job: job}
	r.jobs[h] = struct{}{}
	return h
}

// untrack moves a finishing job into the bounded recent ring, snapshotting
// its slots while the workers are still attached.
func (r *DistRunner) untrack(h *distJob) {
	h.final = h.job.Stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.jobs, h)
	r.recent = append(r.recent, h)
	if len(r.recent) > retainedJobStats {
		r.recent = r.recent[len(r.recent)-retainedJobStats:]
	}
}
