// bench_test.go regenerates every evaluation artifact of the FLIPS paper as
// a Go benchmark: one benchmark per table (1–24), one per figure (2, 5–13),
// the §5.1 TEE-overhead measurement, and the ablation studies DESIGN.md
// calls out. Benchmarks run a reduced "bench scale" (30 parties, 24 rounds)
// so `go test -bench=. -benchmem` finishes in minutes; `cmd/flipsbench`
// regenerates the same artifacts at laptop or paper scale.
//
// Convergence results are reported as custom benchmark metrics:
// rounds-to-target (the paper's odd tables) and peak balanced accuracy in
// percent (the even tables).
package flips

import (
	"io"
	"math/big"
	"testing"

	"flips/internal/cluster"
	"flips/internal/core"
	"flips/internal/dataset"
	"flips/internal/experiment"
	"flips/internal/fl"
	"flips/internal/model"
	"flips/internal/rng"
	"flips/internal/secagg"
	"flips/internal/selection"
	"flips/internal/tensor"
)

const benchSeed = 1

func benchScale() experiment.Scale {
	return experiment.Scale{
		Parties: 30, Rounds: 24, TrainSize: 2400, TestSize: 400,
		Repeats: 1, EvalEvery: 6,
	}
}

// benchmarkTable regenerates one paper table per iteration: the full
// (α × party% × straggler-column) grid for the table's dataset/algorithm,
// rendered to io.Discard.
func benchmarkTable(b *testing.B, tableID int) {
	spec, err := experiment.TableSpecByID(tableID)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grid, err := experiment.RunGrid(spec.Dataset, spec.Algorithm, benchScale(), benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		grid.RenderTable(io.Discard, spec)
		// Surface the headline cell (α=0.3, 20%, no stragglers, FLIPS) as
		// benchmark metrics so regressions in the science are visible in
		// bench output, not only in timing.
		if cell, ok := grid.Rows[0].Cell(experiment.StrategyFLIPS, 0); ok {
			if spec.Metric == experiment.MetricRounds {
				rtt := float64(cell.RoundsToTarget)
				if cell.RoundsToTarget < 0 {
					rtt = float64(grid.Rounds + 1)
				}
				b.ReportMetric(rtt, "flips-rounds")
			} else {
				b.ReportMetric(100*cell.PeakAccuracy, "flips-peak-%")
			}
		}
	}
}

func BenchmarkTable01(b *testing.B) { benchmarkTable(b, 1) }
func BenchmarkTable02(b *testing.B) { benchmarkTable(b, 2) }
func BenchmarkTable03(b *testing.B) { benchmarkTable(b, 3) }
func BenchmarkTable04(b *testing.B) { benchmarkTable(b, 4) }
func BenchmarkTable05(b *testing.B) { benchmarkTable(b, 5) }
func BenchmarkTable06(b *testing.B) { benchmarkTable(b, 6) }
func BenchmarkTable07(b *testing.B) { benchmarkTable(b, 7) }
func BenchmarkTable08(b *testing.B) { benchmarkTable(b, 8) }
func BenchmarkTable09(b *testing.B) { benchmarkTable(b, 9) }
func BenchmarkTable10(b *testing.B) { benchmarkTable(b, 10) }
func BenchmarkTable11(b *testing.B) { benchmarkTable(b, 11) }
func BenchmarkTable12(b *testing.B) { benchmarkTable(b, 12) }
func BenchmarkTable13(b *testing.B) { benchmarkTable(b, 13) }
func BenchmarkTable14(b *testing.B) { benchmarkTable(b, 14) }
func BenchmarkTable15(b *testing.B) { benchmarkTable(b, 15) }
func BenchmarkTable16(b *testing.B) { benchmarkTable(b, 16) }
func BenchmarkTable17(b *testing.B) { benchmarkTable(b, 17) }
func BenchmarkTable18(b *testing.B) { benchmarkTable(b, 18) }
func BenchmarkTable19(b *testing.B) { benchmarkTable(b, 19) }
func BenchmarkTable20(b *testing.B) { benchmarkTable(b, 20) }
func BenchmarkTable21(b *testing.B) { benchmarkTable(b, 21) }
func BenchmarkTable22(b *testing.B) { benchmarkTable(b, 22) }
func BenchmarkTable23(b *testing.B) { benchmarkTable(b, 23) }
func BenchmarkTable24(b *testing.B) { benchmarkTable(b, 24) }

func benchmarkFigure(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure(id, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		fig.Render(io.Discard)
	}
}

func BenchmarkFigure02Elbow(b *testing.B)        { benchmarkFigure(b, "fig2") }
func BenchmarkFigure05ECG(b *testing.B)          { benchmarkFigure(b, "fig5") }
func BenchmarkFigure06ECGStrag(b *testing.B)     { benchmarkFigure(b, "fig6") }
func BenchmarkFigure07HAM(b *testing.B)          { benchmarkFigure(b, "fig7") }
func BenchmarkFigure08HAMStrag(b *testing.B)     { benchmarkFigure(b, "fig8") }
func BenchmarkFigure09FEMNIST(b *testing.B)      { benchmarkFigure(b, "fig9") }
func BenchmarkFigure10FEMNISTStrag(b *testing.B) { benchmarkFigure(b, "fig10") }
func BenchmarkFigure11Fashion(b *testing.B)      { benchmarkFigure(b, "fig11") }
func BenchmarkFigure12FashionStrag(b *testing.B) { benchmarkFigure(b, "fig12") }
func BenchmarkFigure13Underrep(b *testing.B)     { benchmarkFigure(b, "fig13") }

// BenchmarkTEEClusteringOverhead reproduces §5.1: in-enclave vs plain
// clustering time, reported as a percentage metric.
func BenchmarkTEEClusteringOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTEEOverhead(benchScale(), 3, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadPct, "overhead-%")
	}
}

// runWithSelector runs the bench-scale ECG FedYogi job with a substituted
// selector and returns rounds-to-target (rounds budget+1 when missed) and
// peak accuracy.
func runWithSelector(b *testing.B, setting experiment.Setting, scale experiment.Scale, sel fl.Selector) (float64, float64) {
	b.Helper()
	built, err := experiment.Build(setting, scale)
	if err != nil {
		b.Fatal(err)
	}
	if sel != nil {
		built.Config.Selector = sel
	}
	res, err := fl.Run(built.Config)
	if err != nil {
		b.Fatal(err)
	}
	rtt := float64(res.RoundsToTarget)
	if res.RoundsToTarget < 0 {
		rtt = float64(scale.Rounds + 1)
	}
	return rtt, res.PeakAccuracy
}

func ecgSetting(stragglers float64) experiment.Setting {
	return experiment.Setting{
		Spec:           dataset.ECG(),
		Algorithm:      experiment.AlgoFedYogi,
		Alpha:          0.3,
		PartyFraction:  0.2,
		StragglerRate:  stragglers,
		Strategy:       experiment.StrategyFLIPS,
		TargetAccuracy: experiment.TargetFor(dataset.ECG()),
		Seed:           benchSeed,
	}
}

// ablationScale gives convergence room for the ablation comparisons.
func ablationScale() experiment.Scale {
	s := benchScale()
	s.Rounds = 60
	return s
}

// BenchmarkAblationClusterSampling compares FLIPS's equitable round-robin
// against size-proportional sampling from the same label clusters
// (DESIGN.md ablation 1).
func BenchmarkAblationClusterSampling(b *testing.B) {
	scale := ablationScale()
	b.Run("equitable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtt, peak := runWithSelector(b, ecgSetting(0), scale, nil)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
	b.Run("proportional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			built, err := experiment.Build(ecgSetting(0), scale)
			if err != nil {
				b.Fatal(err)
			}
			sel, err := selection.NewClusterProportional(built.Clusters, rng.New(benchSeed))
			if err != nil {
				b.Fatal(err)
			}
			rtt, peak := runWithSelector(b, ecgSetting(0), scale, sel)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
}

// BenchmarkAblationFixedK compares the Davies-Bouldin elbow k against badly
// chosen fixed cluster counts (DESIGN.md ablation 2; paper §3.1's "when k is
// small… when k is large…").
func BenchmarkAblationFixedK(b *testing.B) {
	scale := ablationScale()
	runFixedK := func(b *testing.B, k int) {
		for i := 0; i < b.N; i++ {
			built, err := experiment.Build(ecgSetting(0), scale)
			if err != nil {
				b.Fatal(err)
			}
			lds := fl.NormalizedLabelDists(built.Parties)
			clusters, err := core.ClusterWithK(lds, k, rng.New(benchSeed))
			if err != nil {
				b.Fatal(err)
			}
			sel, err := core.NewSelector(clusters)
			if err != nil {
				b.Fatal(err)
			}
			rtt, peak := runWithSelector(b, ecgSetting(0), scale, sel)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	}
	b.Run("elbow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtt, peak := runWithSelector(b, ecgSetting(0), scale, nil)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
	b.Run("k=2", func(b *testing.B) { runFixedK(b, 2) })
	b.Run("k=15", func(b *testing.B) { runFixedK(b, 15) })
}

// BenchmarkAblationOverprovision compares FLIPS's straggler-cluster-aware
// over-provisioning against uniform random replacement under 20% stragglers
// (DESIGN.md ablation 3).
func BenchmarkAblationOverprovision(b *testing.B) {
	scale := ablationScale()
	b.Run("cluster-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtt, peak := runWithSelector(b, ecgSetting(0.2), scale, nil)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			built, err := experiment.Build(ecgSetting(0.2), scale)
			if err != nil {
				b.Fatal(err)
			}
			sel, err := core.NewSelector(built.Clusters)
			if err != nil {
				b.Fatal(err)
			}
			sel.SetRandomOverprovision(true, rng.New(benchSeed))
			rtt, peak := runWithSelector(b, ecgSetting(0.2), scale, sel)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
}

// BenchmarkAblationClusterSignal isolates the clustering signal: the same
// equitable selection policy on label-distribution clusters vs clusters of
// the parties' true initial gradients (DESIGN.md ablation 4, the
// FLIPS-vs-GradClus comparison with selection policy held fixed).
func BenchmarkAblationClusterSignal(b *testing.B) {
	scale := ablationScale()
	b.Run("label-clusters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtt, peak := runWithSelector(b, ecgSetting(0), scale, nil)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
	b.Run("gradient-clusters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			built, err := experiment.Build(ecgSetting(0), scale)
			if err != nil {
				b.Fatal(err)
			}
			// True full-batch gradient of every party at the common initial
			// model — the best case for gradient clustering (no staleness,
			// no random placeholders).
			spec := dataset.ECG()
			m := model.NewLogReg(spec.Dim, len(spec.LabelNames))
			grads := make([]tensor.Vec, len(built.Parties))
			for pi, party := range built.Parties {
				g := tensor.NewVec(m.NumParams())
				m.Gradient(party.Data, g)
				grads[pi] = g
			}
			k := len(built.Clusters) // same cluster count as the label path
			assign, err := cluster.Agglomerative(cluster.CosineDistanceMatrix(grads), k, cluster.AverageLinkage)
			if err != nil {
				b.Fatal(err)
			}
			gradClusters := make([][]int, k)
			for id, c := range assign {
				gradClusters[c] = append(gradClusters[c], id)
			}
			sel, err := core.NewSelector(gradClusters)
			if err != nil {
				b.Fatal(err)
			}
			rtt, peak := runWithSelector(b, ecgSetting(0), scale, sel)
			b.ReportMetric(rtt, "rounds")
			b.ReportMetric(100*peak, "peak-%")
		}
	})
}

// BenchmarkRoundParallelism measures the parallel round execution engine on
// its hot path: a 32-party FL job with full participation (every party
// trains an MLP every round), run at Parallelism: 1 (the sequential
// baseline) vs Parallelism: GOMAXPROCS. Both produce bit-identical Results
// (see internal/fl determinism tests); on a multi-core runner the parallel
// case should show ≥2x wall-clock speedup. Job assembly (dataset synthesis,
// partitioning, clustering) is excluded from the timed section.
func BenchmarkRoundParallelism(b *testing.B) {
	run := func(b *testing.B, parallelism int) {
		scale := experiment.Scale{
			Parties: 32, Rounds: 4, TrainSize: 3200, TestSize: 1600,
			Repeats: 1, EvalEvery: 2, Parallelism: parallelism,
		}
		setting := experiment.Setting{
			Spec:           dataset.FEMNIST(),
			Algorithm:      experiment.AlgoFedYogi,
			Alpha:          0.3,
			PartyFraction:  1, // all 32 parties train every round
			Strategy:       experiment.StrategyRandom,
			TargetAccuracy: experiment.TargetFor(dataset.FEMNIST()),
			Seed:           benchSeed,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			built, err := experiment.Build(setting, scale)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := fl.Run(built.Config); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("parallelism=1", func(b *testing.B) { run(b, 1) })
	b.Run("parallelism=gomaxprocs", func(b *testing.B) { run(b, 0) })
}

// BenchmarkGridParallelism measures experiment-grid fan-out: one full
// (dataset, algorithm) table grid — 44 cells — at sequential vs GOMAXPROCS
// cell parallelism. The rendered Grid is bit-identical in both cases.
func BenchmarkGridParallelism(b *testing.B) {
	run := func(b *testing.B, parallelism int) {
		scale := benchScale()
		scale.Parallelism = parallelism
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunGrid(dataset.ECG(), experiment.AlgoFedAvg, scale, benchSeed, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("parallelism=1", func(b *testing.B) { run(b, 1) })
	b.Run("parallelism=gomaxprocs", func(b *testing.B) { run(b, 0) })
}

// BenchmarkSecureAggregation compares the per-round cost of the three
// aggregation-privacy mechanisms the paper discusses in §2.4 on one
// ECG-model-sized update (paper claim: HE costs two to three orders of
// magnitude more than hardware-assisted approaches; masking sits between).
func BenchmarkSecureAggregation(b *testing.B) {
	const parties = 10
	spec := dataset.ECG()
	dim := model.NewLogReg(spec.Dim, len(spec.LabelNames)).NumParams()
	r := rng.New(benchSeed)
	updates := make([][]float64, parties)
	for p := range updates {
		u := make([]float64, dim)
		for j := range u {
			u[j] = r.NormFloat64()
		}
		updates[p] = u
	}

	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sum := make([]float64, dim)
			for _, u := range updates {
				for j, x := range u {
					sum[j] += x
				}
			}
		}
	})

	b.Run("masking-x25519", func(b *testing.B) {
		members := make([]*secagg.Party, parties)
		peers := make([]secagg.Peer, parties)
		for p := 0; p < parties; p++ {
			sp, err := secagg.NewParty(p)
			if err != nil {
				b.Fatal(err)
			}
			members[p] = sp
			peers[p] = secagg.Peer{ID: p, PublicKey: sp.PublicKey()}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			masked := make([]*secagg.MaskedUpdate, parties)
			for p, sp := range members {
				m, err := sp.Mask(updates[p], peers)
				if err != nil {
					b.Fatal(err)
				}
				masked[p] = m
			}
			if _, err := secagg.Aggregate(masked, dim); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("paillier-1024", func(b *testing.B) {
		sk, err := secagg.GeneratePaillierKey(1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vectors := make([][]*big.Int, parties)
			for p := range updates {
				enc, err := sk.EncryptVector(updates[p])
				if err != nil {
					b.Fatal(err)
				}
				vectors[p] = enc
			}
			agg, err := sk.AggregateCiphertexts(vectors)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sk.DecryptVectorSum(agg, parties); err != nil {
				b.Fatal(err)
			}
		}
	})
}
