package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExpandExperimentsAll(t *testing.T) {
	ids, err := expandExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 24+10+1+1+1+1+1+1+1+1 {
		t.Fatalf("expanded %d ids", len(ids))
	}
	if ids[0] != "table1" || ids[23] != "table24" {
		t.Fatalf("table ordering: %v", ids[:24])
	}
	if ids[24] != "fig2" {
		t.Fatalf("figures not after tables: %v", ids[24])
	}
	for i, want := range []string{"het", "async", "chaos", "privacy", "tournament", "scale", "dist", "tee"} {
		if got := ids[len(ids)-8+i]; got != want {
			t.Fatalf("tail ordering: got %q at %d, want %q (ids: %v)", got, i, want, ids[len(ids)-8:])
		}
	}
}

func TestExpandExperimentsDedupAndOrder(t *testing.T) {
	ids, err := expandExperiments("fig5, table2,table2 ,fig2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table2", "fig2", "fig5"}
	if len(ids) != len(want) {
		t.Fatalf("ids %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v, want %v", ids, want)
		}
	}
}

func TestExpandExperimentsEmpty(t *testing.T) {
	if _, err := expandExperiments(" , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &out, &errBuf); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-exp", "table99"}, &out, &errBuf); err == nil {
		t.Fatal("bad table accepted")
	}
	if err := run([]string{"-exp", "moon-landing"}, &out, &errBuf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunHetExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("het sweep runs 27 FL jobs at laptop scale")
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "het", "-q"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "time to attain target accuracy") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "diurnal") {
		t.Fatalf("missing diurnal row:\n%s", out.String())
	}
}

func TestRunScaleExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-exp", "scale", "-shards", "16", "-scale-parties", "300,3000", "-q"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Fleet-scale sweep") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "3000\t16\t") {
		t.Fatalf("missing 3000-party x 16-shard cell:\n%s", got)
	}
}

// TestDistWorkerConnectFailsFast pins the internal worker flag: with nothing
// listening the worker mode reports the dial failure instead of hanging.
func TestDistWorkerConnectFailsFast(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dist-worker-connect", "127.0.0.1:1"}, &out, &errBuf); err == nil {
		t.Fatal("dial failure not reported")
	}
}

// TestRunDistExperiment runs the distributed sweep end to end through the
// compiled binary: the coordinator re-execs it as real shard-worker
// subprocesses, so this covers the -dist-worker-connect plumbing and the
// byte-identity check (RunDist fails the run on any divergence).
func TestRunDistExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary and runs subprocess workers")
	}
	bin := filepath.Join(t.TempDir(), "flipsbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, msg)
	}
	cmd := exec.Command(bin, "-exp", "dist", "-scale-parties", "500", "-dist-workers", "2", "-q")
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "Distributed-aggregation sweep") {
		t.Fatalf("output:\n%s", got)
	}
	for _, cell := range []string{"500\t0\t", "500\t2\t"} {
		if !strings.Contains(got, cell) {
			t.Fatalf("missing cell %q:\n%s", cell, got)
		}
	}
	if strings.Contains(got, "false") {
		t.Fatalf("divergent cell in output:\n%s", got)
	}
}

func TestParseSelectors(t *testing.T) {
	if got, err := parseSelectors(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
	got, err := parseSelectors(" random, loss-prop ")
	if err != nil || len(got) != 2 || got[0] != "random" || got[1] != "loss-prop" {
		t.Fatalf("parsed %v, %v", got, err)
	}
	if _, err := parseSelectors("psychic"); err == nil || !strings.Contains(err.Error(), "flips") {
		t.Fatalf("unknown selector: err = %v, want error listing registered names", err)
	}
	if _, err := parseSelectors(" , "); err == nil {
		t.Fatal("blank list accepted")
	}
}

// TestRunTournamentExperiment runs a reduced tournament through the CLI: two
// selectors, four regimes, with the -selector flag doing the subsetting.
func TestRunTournamentExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament runs FL jobs at laptop scale")
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "tournament", "-selector", "random,flips", "-q"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Selector tournament", "clean arm reached by", "byzantine-20%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestParseIntList(t *testing.T) {
	if got, err := parseIntList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
	got, err := parseIntList(" 100, 2000 ")
	if err != nil || len(got) != 2 || got[0] != 100 || got[1] != 2000 {
		t.Fatalf("parsed %v, %v", got, err)
	}
	if _, err := parseIntList("10,x"); err == nil {
		t.Fatal("accepted non-numeric population")
	}
	if _, err := parseIntList("0"); err == nil {
		t.Fatal("accepted zero population")
	}
}

func TestRunChaosExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs FL jobs at laptop scale")
	}
	dir := t.TempDir()
	matrix := filepath.Join(dir, "matrix.json")
	spec := `{
		"faults": [
			{"name": "clean"},
			{"name": "byzantine-20", "spec": {"seed": 3, "faultFraction": 0.2, "fault": "byzantine"}}
		],
		"folds": ["mean", "median"],
		"strategies": ["random"]
	}`
	if err := os.WriteFile(matrix, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "chaos", "-chaos-matrix", matrix, "-q"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Chaos fault-matrix sweep", "byzantine-20", "median"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestChaosMatrixRequiresChaosExperiment(t *testing.T) {
	dir := t.TempDir()
	matrix := filepath.Join(dir, "matrix.json")
	if err := os.WriteFile(matrix, []byte(`{"faults":[{"name":"clean"}],"folds":["mean"],"strategies":["random"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-exp", "tee", "-chaos-matrix", matrix}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("err = %v, want -chaos-matrix gating error", err)
	}
}

func TestRunTeeExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "tee", "-q"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "TEE clustering overhead") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "tee", "-q", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunPrivacyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("privacy sweep runs FL jobs at laptop scale")
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "privacy", "-q"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Privacy-ladder sweep", "plaintext", "masked(t=2)", "masked+dp(ε=5,t=2)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}
