// Command flipsbench regenerates the FLIPS paper's evaluation artifacts:
// Tables 1–24, Figures 2 and 5–13, and the §5.1 TEE-overhead measurement.
//
// Usage:
//
//	flipsbench -exp table1,table2          # specific tables
//	flipsbench -exp fig5,fig13             # specific figures
//	flipsbench -exp het                    # device-heterogeneity time-to-accuracy sweep
//	flipsbench -exp async                  # aggregation-mode (sync/buffered/semisync) sweep
//	flipsbench -exp async -trace t.csv     # ... replaying a real-world availability trace
//	flipsbench -exp chaos                  # fault-matrix sweep (outages, surges, byzantine × folds)
//	flipsbench -exp chaos -chaos-matrix m.json  # ... with a custom declarative fault matrix
//	flipsbench -exp privacy                # privacy-ladder sweep (clip, masking, masking+DP)
//	flipsbench -exp tournament             # every registered selector ranked across fleet regimes
//	flipsbench -exp tournament -selector random,oort  # ... a chosen subset
//	flipsbench -exp tee                    # TEE clustering overhead
//	flipsbench -exp scale -shards 64       # fleet-scale sweep (1k/10k/100k parties)
//	flipsbench -exp dist                   # multi-process aggregation sweep (subprocess shard workers)
//	flipsbench -exp all-tables             # every table (12 grids)
//	flipsbench -exp all-figures            # every figure
//	flipsbench -exp all                    # everything
//	flipsbench -scale paper -exp table1    # full 200-party/400-round scale
//	flipsbench -seed 7 -exp fig2           # change the master seed
//
// Output goes to stdout; progress lines go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"flips/internal/chaos"
	"flips/internal/device"
	"flips/internal/dist"
	"flips/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flipsbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flipsbench", flag.ContinueOnError)
	exps := fs.String("exp", "all", "comma-separated experiments: tableN, figN, het, async, chaos, privacy, tournament, tee, all-tables, all-figures, all")
	selector := fs.String("selector", "", "comma-separated selector registry names: the tournament's competitors (default: every registered selector); a single name also picks the scale sweep's strategy")
	tracePath := fs.String("trace", "", "CSV/JSON device availability trace replayed by the async sweep (one row of 0/1 slots per device, mapped onto parties by ID)")
	chaosMatrix := fs.String("chaos-matrix", "", "JSON fault-matrix file for the chaos sweep (fault arms × folds × strategies; default: built-in matrix)")
	scaleName := fs.String("scale", "laptop", "experiment scale: laptop or paper")
	seed := fs.Uint64("seed", 1, "master random seed")
	par := fs.Int("parallel", 0, "worker-pool width for grid cells, repeats, local training and eval shards (0 = GOMAXPROCS, 1 = sequential; results are identical at every width)")
	shards := fs.Int("shards", 0, "aggregation shard count for every experiment and the scale sweep (0 = single shard; results are identical at every value)")
	scaleParties := fs.String("scale-parties", "", "comma-separated population sizes for the scale and dist sweeps (defaults 1000,10000,100000 / 10000,100000)")
	distWorkerCounts := fs.String("dist-workers", "", "comma-separated shard-worker process counts for the dist sweep (default 1,2,4,8; the in-process baseline always runs)")
	distWorkerConnect := fs.String("dist-worker-connect", "", "internal: run as a dist-sweep shard worker against this coordinator address")
	quiet := fs.Bool("q", false, "suppress per-cell progress")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after GC) to this file at exit")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *distWorkerConnect != "" {
		// Subprocess mode: serve shard-training waves for a dist-sweep
		// coordinator until it sends the shutdown frame.
		return dist.RunWorker(*distWorkerConnect, dist.WorkerOptions{
			Builder:     experiment.DistFleetBuilder(),
			Parallelism: *par,
		})
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "flipsbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report steady-state live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "flipsbench: memprofile:", err)
			}
		}()
	}

	var scale experiment.Scale
	switch *scaleName {
	case "laptop":
		scale = experiment.LaptopScale()
	case "paper":
		scale = experiment.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (laptop or paper)", *scaleName)
	}
	scale.Parallelism = *par
	scale.Shards = *shards

	ids, err := expandExperiments(*exps)
	if err != nil {
		return err
	}

	// Validate -selector names against the registry at the edge, before any
	// compute is spent: a typo reports what would have worked.
	selectors, err := parseSelectors(*selector)
	if err != nil {
		return err
	}

	var trace *device.TraceSet
	if *tracePath != "" {
		trace, err = device.LoadTraceFile(*tracePath)
		if err != nil {
			return err
		}
		hasAsync := false
		for _, id := range ids {
			hasAsync = hasAsync || id == "async"
		}
		if !hasAsync {
			return fmt.Errorf("-trace applies to the async sweep; add async to -exp")
		}
	}

	var matrix *chaos.Matrix
	if *chaosMatrix != "" {
		matrix, err = chaos.LoadMatrixFile(*chaosMatrix)
		if err != nil {
			return err
		}
		hasChaos := false
		for _, id := range ids {
			hasChaos = hasChaos || id == "chaos"
		}
		if !hasChaos {
			return fmt.Errorf("-chaos-matrix applies to the chaos sweep; add chaos to -exp")
		}
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(stderr, "  "+msg)
		}
	}

	// Tables that share a (dataset, algorithm) grid are computed once.
	type gridKey struct{ ds, algo string }
	grids := map[gridKey]*experiment.Grid{}

	for _, id := range ids {
		switch {
		case strings.HasPrefix(id, "table"):
			n, err := strconv.Atoi(strings.TrimPrefix(id, "table"))
			if err != nil {
				return fmt.Errorf("bad table id %q", id)
			}
			spec, err := experiment.TableSpecByID(n)
			if err != nil {
				return err
			}
			key := gridKey{spec.Dataset.Name, spec.Algorithm}
			grid, ok := grids[key]
			if !ok {
				fmt.Fprintf(stderr, "running grid %s/%s (%d cells)...\n", key.ds, key.algo, 4*11)
				grid, err = experiment.RunGrid(spec.Dataset, spec.Algorithm, scale, *seed, progress)
				if err != nil {
					return err
				}
				grids[key] = grid
			}
			grid.RenderTable(stdout, spec)
			fmt.Fprintln(stdout)
		case strings.HasPrefix(id, "fig"):
			fmt.Fprintf(stderr, "running %s...\n", id)
			fig, err := experiment.RunFigure(id, scale, *seed)
			if err != nil {
				return err
			}
			fig.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "het":
			fmt.Fprintln(stderr, "running device-heterogeneity sweep (9 scenarios x 3 strategies)...")
			table, err := experiment.RunHeterogeneity(scale, *seed, progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "async":
			fmt.Fprintln(stderr, "running aggregation-mode sweep (5 arms x 3 strategies)...")
			table, err := experiment.RunAsync(scale, *seed, trace, progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "chaos":
			fmt.Fprintln(stderr, "running chaos fault-matrix sweep (faults x folds x strategies)...")
			table, err := experiment.RunChaos(scale, *seed, matrix, progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "privacy":
			fmt.Fprintln(stderr, "running privacy-ladder sweep (4 arms x 3 strategies)...")
			table, err := experiment.RunPrivacy(scale, *seed, nil, progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "tournament":
			fmt.Fprintln(stderr, "running selector tournament (selectors x fleet regimes)...")
			table, err := experiment.RunTournament(scale, *seed, selectors, progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "scale":
			fmt.Fprintln(stderr, "running fleet-scale sweep (parties x shards)...")
			sweep := experiment.ScaleSweep{Seed: *seed, Parallelism: *par}
			if len(selectors) == 1 {
				sweep.Strategy = selectors[0]
			}
			if *shards > 0 {
				sweep.Shards = []int{*shards}
			}
			parties, err := parseIntList(*scaleParties)
			if err != nil {
				return fmt.Errorf("-scale-parties: %w", err)
			}
			sweep.Parties = parties
			table, err := experiment.RunScale(sweep, progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "dist":
			fmt.Fprintln(stderr, "running distributed-aggregation sweep (parties x worker processes)...")
			sweep := experiment.DistSweep{Seed: *seed, Parallelism: *par}
			if *shards > 0 {
				sweep.Shards = *shards
			}
			parties, err := parseIntList(*scaleParties)
			if err != nil {
				return fmt.Errorf("-scale-parties: %w", err)
			}
			sweep.Parties = parties
			workers, err := parseIntList(*distWorkerCounts)
			if err != nil {
				return fmt.Errorf("-dist-workers: %w", err)
			}
			sweep.Workers = workers
			table, err := experiment.RunDist(sweep, subprocessWorkers(stderr), progress)
			if err != nil {
				return err
			}
			table.Render(stdout)
			fmt.Fprintln(stdout)
		case id == "tee":
			fmt.Fprintln(stderr, "running tee overhead...")
			res, err := experiment.RunTEEOverhead(scale, 5, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, res)
			fmt.Fprintln(stdout)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	return nil
}

func expandExperiments(spec string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, raw := range strings.Split(spec, ",") {
		id := strings.TrimSpace(raw)
		switch id {
		case "":
		case "all":
			for i := 1; i <= 24; i++ {
				add("table" + strconv.Itoa(i))
			}
			for _, f := range experiment.FigureIDs() {
				add(f)
			}
			add("het")
			add("async")
			add("chaos")
			add("privacy")
			add("tournament")
			add("scale")
			add("dist")
			add("tee")
		case "all-tables":
			for i := 1; i <= 24; i++ {
				add("table" + strconv.Itoa(i))
			}
		case "all-figures":
			for _, f := range experiment.FigureIDs() {
				add(f)
			}
		default:
			add(id)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	// Stable order: tables numerically, then figures, then het, async,
	// chaos, privacy, tournament, scale, dist, tee.
	sort.SliceStable(out, func(i, j int) bool { return expRank(out[i]) < expRank(out[j]) })
	return out, nil
}

func expRank(id string) int {
	if strings.HasPrefix(id, "table") {
		n, _ := strconv.Atoi(strings.TrimPrefix(id, "table"))
		return n
	}
	if strings.HasPrefix(id, "fig") {
		n, _ := strconv.Atoi(strings.TrimPrefix(id, "fig"))
		return 100 + n
	}
	if id == "het" {
		return 150
	}
	if id == "async" {
		return 160
	}
	if id == "chaos" {
		return 165
	}
	if id == "privacy" {
		return 167
	}
	if id == "tournament" {
		return 168
	}
	if id == "scale" {
		return 170
	}
	if id == "dist" {
		return 175
	}
	return 200
}

// subprocessWorkers re-execs this binary as shard-worker processes — the
// honest coordinator-heap measurement, since training then allocates in the
// workers. Stop kills any worker the coordinator's shutdown frame has not
// already released.
func subprocessWorkers(stderr io.Writer) experiment.WorkerSpawner {
	return func(addr string, n int) (func(), error) {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("locate own binary for worker re-exec: %w", err)
		}
		cmds := make([]*exec.Cmd, 0, n)
		for i := 0; i < n; i++ {
			cmd := exec.Command(self, "-dist-worker-connect", addr)
			cmd.Stderr = stderr
			if err := cmd.Start(); err != nil {
				for _, c := range cmds {
					_ = c.Process.Kill()
					_ = c.Wait()
				}
				return nil, fmt.Errorf("start worker %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
		}
		return func() {
			for _, c := range cmds {
				done := make(chan struct{})
				go func(c *exec.Cmd) { _ = c.Wait(); close(done) }(c)
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					_ = c.Process.Kill()
					<-done
				}
			}
		}, nil
	}
}

// parseSelectors parses and validates a comma-separated selector list
// against the selection registry ("" -> nil, meaning every registrant).
func parseSelectors(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	registered := map[string]bool{}
	for _, name := range experiment.ExtendedStrategies() {
		registered[name] = true
	}
	var out []string
	for _, f := range strings.Split(spec, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		if !registered[name] {
			return nil, fmt.Errorf("-selector: unknown selector %q (registered: %s)",
				name, strings.Join(experiment.ExtendedStrategies(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-selector: no selector names given")
	}
	return out, nil
}

// parseIntList parses a comma-separated list of positive ints ("" -> nil).
func parseIntList(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("population size %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}
