package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the serve test reads output
// while the daemon goroutine writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	stop := make(chan os.Signal)
	if err := run([]string{"-no-such-flag"}, &out, &errBuf, stop); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-maxk", "banana"}, &out, &errBuf, stop); err == nil {
		t.Fatal("non-numeric maxk accepted")
	}
}

func TestRunRejectsBadListenAddress(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	stop := make(chan os.Signal)
	if err := run([]string{"-listen", "not-an-address"}, &out, &errBuf, stop); err == nil {
		t.Fatal("bad listen address accepted in jobs mode")
	}
	if err := run([]string{"-mode", "tee", "-listen", "not-an-address"}, &out, &errBuf, stop); err == nil {
		t.Fatal("bad listen address accepted in tee mode")
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	err := run([]string{"-mode", "banana"}, &out, &errBuf, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "unknown -mode") {
		t.Fatalf("unknown mode not rejected: %v", err)
	}
}

// TestRunRejectsUnknownAggregation pins the fail-fast contract: a typo'd
// execution model must be caught at flag time, not deep inside a simulation.
func TestRunRejectsUnknownAggregation(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	err := run([]string{"-selftest", "-aggregation", "asink"}, &out, &errBuf, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "unknown -aggregation") {
		t.Fatalf("unknown aggregation not rejected at flag time: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("selftest ran before validation:\n%s", out.String())
	}
}

// TestRunRejectsUnknownFold pins the same fail-fast contract for the
// aggregation fold name.
func TestRunRejectsUnknownFold(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	err := run([]string{"-selftest", "-fold", "geometric"}, &out, &errBuf, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "-fold") {
		t.Fatalf("unknown fold not rejected at flag time: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("selftest ran before validation:\n%s", out.String())
	}
}

// TestRunRejectsUnknownSelector pins the same fail-fast contract for the
// -selector registry name, and checks the error lists what would have worked.
func TestRunRejectsUnknownSelector(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	err := run([]string{"-selftest", "-selector", "psychic"}, &out, &errBuf, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "-selector") || !strings.Contains(err.Error(), "oort") {
		t.Fatalf("unknown selector not rejected at flag time with the registered list: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("selftest ran before validation:\n%s", out.String())
	}
}

// TestSelftestRunsAlternateSelector smokes the -selector flag end to end:
// the selftest must thread the strategy through the public config and name
// it in its banner.
func TestSelftestRunsAlternateSelector(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-selftest", "-seed", "3", "-selector", "loss-prop"}, &out, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "loss-prop selection") {
		t.Fatalf("selftest banner missing the selector:\n%s", o)
	}
	if !strings.Contains(o, "selftest: ok") {
		t.Fatalf("selftest with an alternate selector did not finish:\n%s", o)
	}
}

// TestServeAndShutdown boots the TEE daemon on an ephemeral port and stops it
// via the signal channel, checking the provisioning banner and the wipe
// message — the full lifecycle short of real TCP clients (covered by
// internal/tee's own tests).
func TestServeAndShutdown(t *testing.T) {
	t.Parallel()
	var out, errBuf syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-mode", "tee", "-listen", "127.0.0.1:0"}, &out, &errBuf, stop)
	}()
	// The banner is written before the serve loop blocks on stop; poll for
	// it, then trigger shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "serving TEE clustering") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; output:\n%s\n%s", out.String(), errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "enclave measurement:") || !strings.Contains(o, "hardware public key:") {
		t.Fatalf("missing provisioning banner:\n%s", o)
	}
	if !strings.Contains(o, "wiping enclave state") {
		t.Fatalf("missing shutdown message:\n%s", o)
	}
}

var jobsBanner = regexp.MustCompile(`serving simulation jobs on (http://[0-9.:]+)`)

// TestJobsServeSubmitAndDrain boots the default job-server mode on an
// ephemeral port, submits real simulation jobs over HTTP, then sends the
// stop signal while they may still be queued or running. The drain summary
// must account for every accepted job — the no-lost-jobs contract of an
// orderly shutdown.
func TestJobsServeSubmitAndDrain(t *testing.T) {
	t.Parallel()
	var out, errBuf syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-workers", "2", "-queue", "8"}, &out, &errBuf, stop)
	}()
	deadline := time.Now().Add(5 * time.Second)
	var base string
	for base == "" {
		if m := jobsBanner.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job server never came up; output:\n%s\n%s", out.String(), errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	const jobs = 5
	accepted := 0
	for i := 0; i < jobs; i++ {
		body := fmt.Sprintf(`{"Dataset":"mit-bih-ecg","Strategy":"random","Rounds":2,"Parties":6,"Seed":%d}`, i+1)
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp.StatusCode == http.StatusAccepted {
			accepted++
		}
		resp.Body.Close()
	}
	if accepted != jobs {
		t.Fatalf("accepted %d of %d submissions", accepted, jobs)
	}

	// Metrics must be scrapeable while jobs are in flight.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	metricsOut := sb.String()
	for _, want := range []string{"flipsd_queue_depth", "flipsd_job_latency_seconds{quantile=\"0.99\"}"} {
		if !strings.Contains(metricsOut, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsOut)
		}
	}

	// Drain while jobs are still queued/running: none may be lost.
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("drain failed: %v\noutput:\n%s", err, out.String())
	}
	o := out.String()
	wantSummary := fmt.Sprintf("drained: accepted=%d done=%d failed=0", jobs, jobs)
	if !strings.Contains(o, wantSummary) {
		t.Fatalf("drain summary missing %q:\n%s", wantSummary, o)
	}
}

var coordBanner = regexp.MustCompile(`shard coordinator on ([0-9.:]+)`)

// TestJobsServeDistributed boots the job server with the shard-worker
// coordinator, connects two flipsd worker-mode instances, runs a real job
// whose local training crosses the process seam, and checks the full
// lifecycle: per-worker /metrics series while the job runs, a byte-correct
// done state, a lossless drain, and workers exiting cleanly on the
// coordinator's shutdown frames.
func TestJobsServeDistributed(t *testing.T) {
	t.Parallel()
	var out, errBuf syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-workers", "1", "-queue", "8",
			"-dist-listen", "127.0.0.1:0", "-dist-workers", "2"}, &out, &errBuf, stop)
	}()
	deadline := time.Now().Add(5 * time.Second)
	var base, coordAddr string
	for base == "" || coordAddr == "" {
		o := out.String()
		if m := jobsBanner.FindStringSubmatch(o); m != nil {
			base = m[1]
		}
		if m := coordBanner.FindStringSubmatch(o); m != nil {
			coordAddr = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("distributed job server never came up; output:\n%s\n%s", out.String(), errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		var wOut, wErr syncBuffer
		go func() {
			workerDone <- run([]string{"-worker", "-connect", coordAddr, "-parallel", "1"}, &wOut, &wErr, make(chan os.Signal, 1))
		}()
	}

	body := `{"Dataset":"mit-bih-ecg","Strategy":"random","Rounds":6,"Seed":7}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submission: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submission not accepted: %d %+v", resp.StatusCode, sub)
	}

	scrape := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("scrape /metrics: %v", err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read /metrics: %v", err)
		}
		return string(b)
	}

	// Scrape while the job runs: the per-slot series only exist while a
	// distributed job is active, so accumulate what we see until the job
	// reaches a terminal state.
	seen := make(map[string]bool)
	var status struct {
		State string
		Error string
	}
	deadline = time.Now().Add(60 * time.Second)
	for status.State != "done" && status.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", status.State)
		}
		m := scrape()
		for _, name := range []string{
			"flipsd_dist_workers_registered 2",
			"flipsd_dist_worker_connected{",
			"flipsd_dist_worker_waves_total{",
			"flipsd_dist_worker_bytes_in_total{",
			"flipsd_dist_worker_lag_waves{",
		} {
			if strings.Contains(m, name) {
				seen[name] = true
			}
		}
		resp, err := http.Get(base + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll job: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if status.State != "done" {
		t.Fatalf("job failed: %s", status.Error)
	}
	if len(seen) != 5 {
		t.Fatalf("missing /metrics series during the run; saw only %v", seen)
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("drain failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained: accepted=1 done=1 failed=0") {
		t.Fatalf("drain summary wrong:\n%s", out.String())
	}
	// Coordinator shutdown frames must release both workers with a clean exit.
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerDone:
			if err != nil {
				t.Fatalf("worker %d exited with error: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not exit after coordinator shutdown")
		}
	}
}

// TestWorkerModeRequiresConnect pins the flag contract.
func TestWorkerModeRequiresConnect(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	err := run([]string{"-worker"}, &out, &errBuf, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "-connect") {
		t.Fatalf("worker without -connect not rejected: %v", err)
	}
}

// TestSelftestReportsTimeToAccuracy runs the deployment smoke: a short
// device-model FL job whose report must include both convergence clocks.
func TestSelftestReportsTimeToAccuracy(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	stop := make(chan os.Signal)
	if err := run([]string{"-selftest", "-seed", "3"}, &out, &errBuf, stop); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	for _, want := range []string{"flipsd selftest", "peak accuracy:", "simulated job time:", "rounds to", "time to", "selftest: ok"} {
		if !strings.Contains(o, want) {
			t.Fatalf("selftest output missing %q:\n%s", want, o)
		}
	}
	if strings.Contains(o, "simulated job time:  0s") {
		t.Fatalf("selftest accumulated no simulated time:\n%s", o)
	}
}

// TestSelftestRunsRobustFold smokes the -fold flag end to end: the selftest
// must thread the fold through the public config and say so in its banner.
func TestSelftestRunsRobustFold(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-selftest", "-seed", "3", "-fold", "median"}, &out, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "median fold") {
		t.Fatalf("selftest banner missing the fold:\n%s", o)
	}
	if !strings.Contains(o, "selftest: ok") {
		t.Fatalf("selftest with a robust fold did not finish:\n%s", o)
	}
}

// TestSelftestIsShardInvariant pins the public-stack half of the sharded
// byte-exactness contract: the selftest report — accuracies, clocks,
// rounds-to-target — must be identical at any -shards value.
func TestSelftestIsShardInvariant(t *testing.T) {
	t.Parallel()
	var base, sharded, errBuf bytes.Buffer
	if err := run([]string{"-selftest", "-seed", "3"}, &base, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-selftest", "-seed", "3", "-shards", "5"}, &sharded, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	if base.String() != sharded.String() {
		t.Fatalf("selftest output moved under -shards 5:\n%s\nvs\n%s", base.String(), sharded.String())
	}
}

// TestSelftestParallelismIsResultInvariant pins the other half of the same
// contract and the single-application CPU-cap fix: -parallel now bounds the
// simulation worker pool (not GOMAXPROCS as well), and the report must be
// byte-identical at any width.
func TestSelftestParallelismIsResultInvariant(t *testing.T) {
	t.Parallel()
	var base, capped, errBuf bytes.Buffer
	if err := run([]string{"-selftest", "-seed", "3"}, &base, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-selftest", "-seed", "3", "-parallel", "2"}, &capped, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	if base.String() != capped.String() {
		t.Fatalf("selftest output moved under -parallel 2:\n%s\nvs\n%s", base.String(), capped.String())
	}
}

// TestSelftestRunsMasked smokes the secure-aggregation flags end to end: the
// selftest must thread masking through the public config, say so in its
// banner, and report the abort counter.
func TestSelftestRunsMasked(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-selftest", "-seed", "3", "-mask", "-share-threshold", "2"}, &out, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "masked") {
		t.Fatalf("selftest banner missing masking:\n%s", o)
	}
	if !strings.Contains(o, "mask aborts:") {
		t.Fatalf("selftest missing the abort counter:\n%s", o)
	}
	if !strings.Contains(o, "selftest: ok") {
		t.Fatalf("masked selftest did not finish:\n%s", o)
	}
	// An invalid privacy combination fails fast through the same validation
	// the job server uses.
	var bad bytes.Buffer
	err := run([]string{"-selftest", "-mask", "-fold", "median"}, &bad, &errBuf, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "mask") {
		t.Fatalf("err = %v, want masking-over-robust-fold rejection", err)
	}
}
