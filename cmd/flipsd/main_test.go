package main

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the serve test reads output
// while the daemon goroutine writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	stop := make(chan os.Signal)
	if err := run([]string{"-no-such-flag"}, &out, &errBuf, stop); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-maxk", "banana"}, &out, &errBuf, stop); err == nil {
		t.Fatal("non-numeric maxk accepted")
	}
}

func TestRunRejectsBadListenAddress(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	stop := make(chan os.Signal)
	if err := run([]string{"-listen", "not-an-address"}, &out, &errBuf, stop); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestServeAndShutdown boots the daemon on an ephemeral port and stops it
// via the signal channel, checking the provisioning banner and the wipe
// message — the full lifecycle short of real TCP clients (covered by
// internal/tee's own tests).
func TestServeAndShutdown(t *testing.T) {
	t.Parallel()
	var out, errBuf syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0"}, &out, &errBuf, stop)
	}()
	// The banner is written before the serve loop blocks on stop; poll for
	// it, then trigger shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "serving TEE clustering") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; output:\n%s\n%s", out.String(), errBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "enclave measurement:") || !strings.Contains(o, "hardware public key:") {
		t.Fatalf("missing provisioning banner:\n%s", o)
	}
	if !strings.Contains(o, "wiping enclave state") {
		t.Fatalf("missing shutdown message:\n%s", o)
	}
}

// TestSelftestReportsTimeToAccuracy runs the deployment smoke: a short
// device-model FL job whose report must include both convergence clocks.
func TestSelftestReportsTimeToAccuracy(t *testing.T) {
	t.Parallel()
	var out, errBuf bytes.Buffer
	stop := make(chan os.Signal)
	if err := run([]string{"-selftest", "-seed", "3"}, &out, &errBuf, stop); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	for _, want := range []string{"flipsd selftest", "peak accuracy:", "simulated job time:", "rounds to", "time to", "selftest: ok"} {
		if !strings.Contains(o, want) {
			t.Fatalf("selftest output missing %q:\n%s", want, o)
		}
	}
	if strings.Contains(o, "simulated job time:  0s") {
		t.Fatalf("selftest accumulated no simulated time:\n%s", o)
	}
}

// TestSelftestIsShardInvariant pins the public-stack half of the sharded
// byte-exactness contract: the selftest report — accuracies, clocks,
// rounds-to-target — must be identical at any -shards value.
func TestSelftestIsShardInvariant(t *testing.T) {
	t.Parallel()
	var base, sharded, errBuf bytes.Buffer
	if err := run([]string{"-selftest", "-seed", "3"}, &base, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-selftest", "-seed", "3", "-shards", "5"}, &sharded, &errBuf, make(chan os.Signal)); err != nil {
		t.Fatal(err)
	}
	if base.String() != sharded.String() {
		t.Fatalf("selftest output moved under -shards 5:\n%s\nvs\n%s", base.String(), sharded.String())
	}
}
