// Command flipsd is the FLIPS aggregator-side daemon. It serves one of three
// modes:
//
//   - Job server (default, -mode jobs): a long-running multi-tenant
//     simulation service. Clients POST flips.SimulationConfig JSON to /jobs,
//     poll GET /jobs/{id}, stream per-round progress from
//     GET /jobs/{id}/stream (NDJSON, or SSE via Accept: text/event-stream),
//     and scrape Prometheus metrics — queue depth, jobs in flight,
//     arrivals/sec, p50/p99 job latency, shard locality — from GET /metrics.
//     Jobs queue on a bounded buffer (-queue); a full buffer sheds load with
//     429. SIGTERM drains gracefully: new jobs get 503 while every accepted
//     job runs to completion, so an orderly shutdown never loses a job.
//
//     With -dist-listen the job server also runs a shard-worker coordinator:
//     separate flipsd worker processes (started with -worker -connect) dial
//     in, each job's party space is partitioned into contiguous shard ranges
//     across them, and local training runs in the worker processes while the
//     coordinator keeps selection, device simulation, chaos, privacy, folds
//     and evaluation. Results are byte-identical to in-process execution at
//     every worker count; /metrics grows per-worker lag/byte gauges.
//
//   - Shard worker (-worker -connect host:port): dials a coordinator and
//     serves local-training waves until the coordinator sends a shutdown
//     frame. Workers redial with backoff if the coordinator restarts;
//     mid-wave worker loss is recovered by the coordinator via reassignment
//     and checkpoint replay, byte-identically.
//
//   - TEE clustering service (-mode tee): boots a simulated secure enclave
//     with the label-distribution clustering code and serves the
//     attestation/submission/selection protocol over TCP (paper §3.3,
//     Figure 3). On startup it prints the enclave's code measurement and the
//     hardware attestation public key; parties provision their attestation
//     server with both and refuse to submit label distributions to any
//     enclave that fails verification.
//
//   - Selftest (-selftest): deployment smoke — run one short device-model FL
//     job through the full pipeline (clustering, FLIPS selection, training)
//     and report time-to-target accuracy, then exit.
//
// Usage:
//
//	flipsd -listen 127.0.0.1:8080 -queue 64 -workers 4     # job server
//	flipsd -dist-listen 127.0.0.1:9090 -dist-workers 2     # + shard coordinator
//	flipsd -worker -connect 127.0.0.1:9090                 # shard worker
//	flipsd -mode tee -listen 127.0.0.1:7443 -maxk 20       # TEE service
//	flipsd -selftest -aggregation buffered -parallel 4     # smoke
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"flips"
	"flips/internal/dist"
	"flips/internal/experiment"
	"flips/internal/fl"
	"flips/internal/server"
	"flips/internal/tee"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, make(chan os.Signal, 1)); err != nil {
		fmt.Fprintln(os.Stderr, "flipsd:", err)
		os.Exit(1)
	}
}

// run drives the daemon; stop makes the serve loops interruptible so tests
// can shut the daemon down without process signals. Process signals are
// registered on stop only once a serve loop is reached — -selftest and flag
// errors keep the default signal disposition, so Ctrl+C still kills them.
func run(args []string, stdout, stderr io.Writer, stop chan os.Signal) error {
	fs := flag.NewFlagSet("flipsd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "TCP listen address")
	mode := fs.String("mode", "jobs", "serve mode: jobs (simulation job server) or tee (TEE clustering service)")
	maxK := fs.Int("maxk", 20, "tee mode: maximum cluster count for the Davies-Bouldin sweep")
	repeats := fs.Int("repeats", 20, "tee mode: K-Means restarts per k (the paper's T)")
	version := fs.String("version", "flips-kmeans-v1", "tee mode: clustering code version (part of the measurement)")
	par := fs.Int("parallel", 0, "CPU cap: GOMAXPROCS for the serve modes, the simulation worker-pool width for -selftest (0 = all cores)")
	queueDepth := fs.Int("queue", 64, "jobs mode: bound on queued-but-not-running jobs; beyond it submissions get 429")
	workers := fs.Int("workers", 0, "jobs mode: concurrently running jobs (0 = GOMAXPROCS)")
	jobPar := fs.Int("job-parallel", 1, "jobs mode: per-job worker-pool width applied when a submitted config leaves Parallelism at 0")
	distListen := fs.String("dist-listen", "", "jobs mode: also listen here for shard-worker processes and run jobs' local training distributed across them")
	distWorkers := fs.Int("dist-workers", 2, "jobs mode with -dist-listen: shard slots each job partitions its party space across")
	worker := fs.Bool("worker", false, "run as a shard worker: dial -connect and serve local-training waves until the coordinator shuts down")
	connect := fs.String("connect", "", "-worker: coordinator address to dial")
	selftest := fs.Bool("selftest", false, "run a short device-model FL simulation (clustering + selection + training pipeline) instead of serving, report time-to-target accuracy, and exit")
	seed := fs.Uint64("seed", 1, "random seed for -selftest")
	selector := fs.String("selector", "flips", "-selftest selection strategy, any selector registry name — smoke the selector a deployment will run")
	aggregation := fs.String("aggregation", "sync", "-selftest execution model: sync, buffered or semisync")
	shards := fs.Int("shards", 0, "-selftest aggregation shard count (0 = single shard; results are identical at every value)")
	fold := fs.String("fold", "", "-selftest aggregation fold: mean (default), trimmed-mean, median or krum — smoke the robust fold a deployment will run")
	mask := fs.Bool("mask", false, "-selftest: enable pairwise secure-aggregation masking with Shamir dropout recovery")
	clip := fs.Float64("clip", 0, "-selftest: L2 update clip bound (required by -mask; defaults to 1 when masking)")
	epsilon := fs.Float64("epsilon", 0, "-selftest: per-round differential-privacy ε (Laplace noise on the folded delta; requires -clip)")
	shareThreshold := fs.Int("share-threshold", 0, "-selftest: minimum survivors for mask dropout reconstruction (0 = cohort majority)")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fail fast on a bad execution model or fold instead of deep inside the
	// run.
	switch *aggregation {
	case "sync", "buffered", "semisync":
	default:
		return fmt.Errorf("unknown -aggregation %q (valid: sync, buffered, semisync)", *aggregation)
	}
	if _, err := fl.FoldByName(*fold); err != nil {
		return fmt.Errorf("-fold: %w", err)
	}
	if !validSelector(*selector) {
		return fmt.Errorf("unknown -selector %q (registered: %s)", *selector, strings.Join(flips.Strategies(), ", "))
	}

	if *selftest {
		// The CPU cap is applied exactly once: as the simulation's
		// worker-pool width. (The serve modes below use GOMAXPROCS instead;
		// doing both here used to double-apply the cap.)
		return runSelftest(stdout, *seed, *par, *aggregation, *shards, *fold, *selector, privacyFlags{
			mask: *mask, clip: *clip, epsilon: *epsilon, shareThreshold: *shareThreshold,
		})
	}

	if *worker {
		if *connect == "" {
			return fmt.Errorf("-worker requires -connect host:port")
		}
		return serveWorker(stdout, stderr, *connect, *par, stop)
	}

	if *par > 0 {
		// The service shares hosts with FL aggregators; a deployment can pin
		// its CPU budget without cgroup plumbing.
		runtime.GOMAXPROCS(*par)
	}

	switch *mode {
	case "jobs":
		return serveJobs(stdout, *listen, *queueDepth, *workers, *jobPar, *distListen, *distWorkers, stop)
	case "tee":
		return serveTEE(stdout, *listen, *maxK, *repeats, *version, stop)
	default:
		return fmt.Errorf("unknown -mode %q (valid: jobs, tee)", *mode)
	}
}

// serveJobs runs the simulation job server until a stop signal, then drains:
// submission stops (503), every accepted job finishes, active status/stream
// connections complete, and the drain summary reports the final counts. With
// distListen set it also runs the shard-worker coordinator and executes every
// job's local training across the registered worker processes; the
// coordinator closes only after the drain, so in-flight jobs keep their
// workers, and closing sends each worker its shutdown frame.
func serveJobs(stdout io.Writer, listen string, queueDepth, workers, jobPar int, distListen string, distWorkers int, stop chan os.Signal) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("job server: %w", err)
	}
	cfg := server.Config{
		QueueDepth:     queueDepth,
		Workers:        workers,
		JobParallelism: jobPar,
	}
	var coord *dist.Coordinator
	if distListen != "" {
		if distWorkers <= 0 {
			ln.Close()
			return fmt.Errorf("-dist-workers must be positive with -dist-listen")
		}
		coord = dist.NewCoordinator()
		distAddr, err := coord.Listen(distListen)
		if err != nil {
			ln.Close()
			return fmt.Errorf("shard coordinator: %w", err)
		}
		defer coord.Close()
		runner := &flips.DistRunner{Coord: coord, Workers: distWorkers}
		cfg.Run = runner.Run
		cfg.DistStats = func() server.DistSnapshot { return distSnapshot(coord, runner) }
		fmt.Fprintf(stdout, "flipsd: shard coordinator on %s (jobs train across %d worker slots)\n", distAddr, distWorkers)
	}
	srv := server.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	fmt.Fprintf(stdout, "flipsd: serving simulation jobs on http://%s\n", ln.Addr())
	fmt.Fprintf(stdout, "  POST /jobs · GET /jobs/{id} · GET /jobs/{id}/stream · GET /metrics\n")
	fmt.Fprintf(stdout, "  queue=%d workers=%d job-parallel=%d\n", queueDepth, workersOrCores(workers), jobPar)

	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	select {
	case err := <-serveErr:
		return fmt.Errorf("job server: %w", err)
	case <-stop:
	}

	fmt.Fprintln(stdout, "flipsd: draining job queue (new submissions get 503)")
	srv.Drain()
	// Every job has finished; give active streams/polls a bounded window to
	// deliver their final events before the listener goes away.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	st := srv.Stats()
	fmt.Fprintf(stdout, "flipsd: drained: accepted=%d done=%d failed=%d rejected=%d\n",
		st.Accepted, st.Done, st.Failed, st.Rejected)
	if st.Done+st.Failed != st.Accepted {
		return fmt.Errorf("drain lost jobs: accepted=%d but done+failed=%d", st.Accepted, st.Done+st.Failed)
	}
	return nil
}

func workersOrCores(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// distSnapshot maps the coordinator's registry and the runner's per-job slot
// stats onto the server's metrics shape.
func distSnapshot(coord *dist.Coordinator, runner *flips.DistRunner) server.DistSnapshot {
	snap := server.DistSnapshot{WorkersRegistered: coord.WorkerCount()}
	for jobID, slots := range runner.WorkerStats() {
		for _, st := range slots {
			snap.Slots = append(snap.Slots, server.DistWorkerStat{
				Job:       fmt.Sprintf("%d", jobID),
				Slot:      st.Slot,
				WorkerID:  st.WorkerID,
				PartyLo:   st.PartyLo,
				PartyHi:   st.PartyHi,
				Connected: st.Connected,
				Waves:     st.Waves,
				LagWaves:  st.LagWaves,
				BytesIn:   st.BytesIn,
				BytesOut:  st.BytesOut,
			})
		}
	}
	sort.Slice(snap.Slots, func(i, j int) bool {
		if snap.Slots[i].Job != snap.Slots[j].Job {
			return snap.Slots[i].Job < snap.Slots[j].Job
		}
		return snap.Slots[i].Slot < snap.Slots[j].Slot
	})
	return snap
}

// serveWorker runs the shard-worker mode: dial the coordinator and serve
// training waves, redialing with backoff when the connection drops, until the
// coordinator sends a shutdown frame or the process receives a stop signal.
func serveWorker(stdout, stderr io.Writer, addr string, par int, stop chan os.Signal) error {
	fmt.Fprintf(stdout, "flipsd: shard worker dialing %s\n", addr)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	var mu sync.Mutex
	var cur net.Conn
	stopped := false
	go func() {
		<-stop
		mu.Lock()
		stopped = true
		if cur != nil {
			cur.Close()
		}
		mu.Unlock()
	}()

	opt := dist.WorkerOptions{Builder: flips.DistWorkerBuilder(), Parallelism: par}
	backoff := 100 * time.Millisecond
	for {
		mu.Lock()
		done := stopped
		mu.Unlock()
		if done {
			fmt.Fprintln(stdout, "flipsd: worker stopping on signal")
			return nil
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			fmt.Fprintf(stderr, "flipsd: worker dial %s: %v (retrying in %s)\n", addr, err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		mu.Lock()
		cur = conn
		mu.Unlock()
		backoff = 100 * time.Millisecond
		err = dist.ServeConn(conn, opt)
		conn.Close()
		mu.Lock()
		cur = nil
		done = stopped
		mu.Unlock()
		if err == nil {
			fmt.Fprintln(stdout, "flipsd: worker received shutdown, exiting")
			return nil
		}
		if done {
			fmt.Fprintln(stdout, "flipsd: worker stopping on signal")
			return nil
		}
		fmt.Fprintf(stderr, "flipsd: worker connection lost: %v (redialing)\n", err)
	}
}

// serveTEE runs the TEE clustering service until a stop signal.
func serveTEE(stdout io.Writer, listen string, maxK, repeats int, version string, stop chan os.Signal) error {
	code := tee.ClusteringCode{Version: version, MaxK: maxK, Repeats: repeats}
	hwPub, hwPriv, err := tee.GenerateHardwareKey()
	if err != nil {
		return err
	}
	enclave, err := tee.NewEnclave(code, hwPriv)
	if err != nil {
		return err
	}
	srv := tee.NewServer(enclave)
	addr, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Fprintf(stdout, "flipsd: serving TEE clustering on %s\n", addr)
	fmt.Fprintf(stdout, "  enclave measurement:  %s\n", enclave.Measurement())
	fmt.Fprintf(stdout, "  hardware public key:  %s\n", hex.EncodeToString(hwPub))
	fmt.Fprintln(stdout, "  parties must provision their attestation server with both values")

	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	<-stop
	fmt.Fprintln(stdout, "flipsd: wiping enclave state and shutting down")
	enclave.Wipe()
	return nil
}

// privacyFlags bundles the -selftest secure-aggregation knobs.
type privacyFlags struct {
	mask           bool
	clip           float64
	epsilon        float64
	shareThreshold int
}

// validSelector reports whether name is a registered selection strategy.
func validSelector(name string) bool {
	for _, s := range flips.Strategies() {
		if s == name {
			return true
		}
	}
	return false
}

// runSelftest exercises the full pipeline the service host will carry —
// clustering, participant selection, FL rounds over a heterogeneous device
// fleet — and reports rounds- and simulated time-to-target-accuracy.
// aggregation picks the execution model ("sync" rounds with a 3s deadline,
// "buffered" FedBuff-style async, or "semisync" 3s windows) and selector the
// selection strategy, so a deployment can smoke whichever combination it
// will run; priv smokes the secure-aggregation middleware (masking, dropout
// reconstruction, clipping, DP noise) the same way.
func runSelftest(stdout io.Writer, seed uint64, par int, aggregation string, shards int, fold, selector string, priv privacyFlags) error {
	cfg := flips.SimulationConfig{
		Dataset:        "mit-bih-ecg",
		Strategy:       selector,
		DeviceProfile:  "lognormal",
		Availability:   "churn",
		Deadline:       3,
		Aggregation:    aggregation,
		Rounds:         20,
		Parties:        24,
		Parallelism:    par,
		Shards:         shards,
		Fold:           fold,
		Mask:           priv.mask,
		Clip:           priv.clip,
		Epsilon:        priv.epsilon,
		ShareThreshold: priv.shareThreshold,
		Seed:           seed,
	}
	if aggregation == "buffered" {
		cfg.Deadline = 0 // buffered aggregation has no deadline concept
	}
	res, err := flips.RunSimulation(cfg)
	if err != nil {
		return err
	}
	foldNote := ""
	if fold != "" {
		foldNote = ", " + fold + " fold"
	}
	if priv.mask {
		foldNote += ", masked"
	} else if priv.clip > 0 {
		foldNote += ", clipped"
	}
	if priv.epsilon > 0 {
		foldNote += fmt.Sprintf(", ε=%g", priv.epsilon)
	}
	fmt.Fprintf(stdout, "flipsd selftest: %s selection over a lognormal device fleet (churn, %s aggregation%s)\n", selector, aggregation, foldNote)
	if res.NumClusters > 0 {
		fmt.Fprintf(stdout, "  clusters:            %d\n", res.NumClusters)
	}
	fmt.Fprintf(stdout, "  peak accuracy:       %.2f%%\n", 100*res.PeakAccuracy)
	fmt.Fprintf(stdout, "  simulated job time:  %s\n", experiment.FormatSimDuration(res.SimTime))
	fmt.Fprintf(stdout, "  rounds to %.0f%%:       %s\n", 100*res.TargetAccuracy, formatRounds(res.RoundsToTarget))
	fmt.Fprintf(stdout, "  time to %.0f%%:         %s\n", 100*res.TargetAccuracy, experiment.FormatSimDuration(res.TimeToTarget))
	if priv.mask {
		aborts := 0
		for _, h := range res.History {
			if h.MaskAborted {
				aborts++
			}
		}
		fmt.Fprintf(stdout, "  mask aborts:         %d\n", aborts)
	}
	fmt.Fprintln(stdout, "flipsd selftest: ok")
	return nil
}

func formatRounds(rtt int) string {
	if rtt < 0 {
		return "not reached"
	}
	return fmt.Sprintf("%d", rtt)
}
