// Command flipsd runs the FLIPS aggregator-side TEE service: it boots a
// simulated secure enclave with the label-distribution clustering code and
// serves the attestation/submission/selection protocol over TCP (paper §3.3,
// Figure 3).
//
// On startup it prints the enclave's code measurement and the hardware
// attestation public key; parties provision their attestation server with
// both and refuse to submit label distributions to any enclave that fails
// verification.
//
// Usage:
//
//	flipsd -listen 127.0.0.1:7443 -maxk 20 -repeats 20 -parallel 4
//	flipsd -selftest        # deployment smoke: run a short device-model FL
//	                        # job and report (simulated) time-to-accuracy
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"flips"
	"flips/internal/experiment"
	"flips/internal/tee"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, make(chan os.Signal, 1)); err != nil {
		fmt.Fprintln(os.Stderr, "flipsd:", err)
		os.Exit(1)
	}
}

// run drives the service; stop makes the serve loop interruptible so tests
// can shut the daemon down without process signals. Process signals are
// registered on stop only once the serve loop is reached — -selftest and
// flag errors keep the default signal disposition, so Ctrl+C still kills
// them.
func run(args []string, stdout, stderr io.Writer, stop chan os.Signal) error {
	fs := flag.NewFlagSet("flipsd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7443", "TCP listen address")
	maxK := fs.Int("maxk", 20, "maximum cluster count for the Davies-Bouldin sweep")
	repeats := fs.Int("repeats", 20, "K-Means restarts per k (the paper's T)")
	version := fs.String("version", "flips-kmeans-v1", "clustering code version (part of the measurement)")
	par := fs.Int("parallel", 0, "cap on CPU parallelism for the service (0 = all cores)")
	selftest := fs.Bool("selftest", false, "run a short device-model FL simulation (clustering + selection + training pipeline) instead of serving, report time-to-target accuracy, and exit")
	seed := fs.Uint64("seed", 1, "random seed for -selftest")
	aggregation := fs.String("aggregation", "sync", "-selftest execution model: sync, buffered or semisync")
	shards := fs.Int("shards", 0, "-selftest aggregation shard count (0 = single shard; results are identical at every value)")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *par > 0 {
		// The service shares hosts with FL aggregators; a deployment can pin
		// its CPU budget without cgroup plumbing.
		runtime.GOMAXPROCS(*par)
	}

	if *selftest {
		return runSelftest(stdout, *seed, *par, *aggregation, *shards)
	}

	code := tee.ClusteringCode{Version: *version, MaxK: *maxK, Repeats: *repeats}
	hwPub, hwPriv, err := tee.GenerateHardwareKey()
	if err != nil {
		return err
	}
	enclave, err := tee.NewEnclave(code, hwPriv)
	if err != nil {
		return err
	}
	server := tee.NewServer(enclave)
	addr, err := server.Listen(*listen)
	if err != nil {
		return err
	}
	defer server.Close()

	fmt.Fprintf(stdout, "flipsd: serving TEE clustering on %s\n", addr)
	fmt.Fprintf(stdout, "  enclave measurement:  %s\n", enclave.Measurement())
	fmt.Fprintf(stdout, "  hardware public key:  %s\n", hex.EncodeToString(hwPub))
	fmt.Fprintln(stdout, "  parties must provision their attestation server with both values")

	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	<-stop
	fmt.Fprintln(stdout, "flipsd: wiping enclave state and shutting down")
	enclave.Wipe()
	return nil
}

// runSelftest exercises the full FLIPS pipeline the service host will carry
// — clustering, FLIPS selection, FL rounds over a heterogeneous device fleet
// — and reports rounds- and simulated time-to-target-accuracy. aggregation
// picks the execution model ("sync" rounds with a 3s deadline, "buffered"
// FedBuff-style async, or "semisync" 3s windows), so a deployment can smoke
// whichever mode it will run.
func runSelftest(stdout io.Writer, seed uint64, par int, aggregation string, shards int) error {
	cfg := flips.SimulationConfig{
		Dataset:       "mit-bih-ecg",
		Strategy:      "flips",
		DeviceProfile: "lognormal",
		Availability:  "churn",
		Deadline:      3,
		Aggregation:   aggregation,
		Rounds:        20,
		Parties:       24,
		Parallelism:   par,
		Shards:        shards,
		Seed:          seed,
	}
	if aggregation == "buffered" {
		cfg.Deadline = 0 // buffered aggregation has no deadline concept
	}
	res, err := flips.RunSimulation(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "flipsd selftest: FLIPS selection over a lognormal device fleet (churn, %s aggregation)\n", aggregation)
	fmt.Fprintf(stdout, "  clusters:            %d\n", res.NumClusters)
	fmt.Fprintf(stdout, "  peak accuracy:       %.2f%%\n", 100*res.PeakAccuracy)
	fmt.Fprintf(stdout, "  simulated job time:  %s\n", experiment.FormatSimDuration(res.SimTime))
	fmt.Fprintf(stdout, "  rounds to %.0f%%:       %s\n", 100*res.TargetAccuracy, formatRounds(res.RoundsToTarget))
	fmt.Fprintf(stdout, "  time to %.0f%%:         %s\n", 100*res.TargetAccuracy, experiment.FormatSimDuration(res.TimeToTarget))
	fmt.Fprintln(stdout, "flipsd selftest: ok")
	return nil
}

func formatRounds(rtt int) string {
	if rtt < 0 {
		return "not reached"
	}
	return fmt.Sprintf("%d", rtt)
}
