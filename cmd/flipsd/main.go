// Command flipsd runs the FLIPS aggregator-side TEE service: it boots a
// simulated secure enclave with the label-distribution clustering code and
// serves the attestation/submission/selection protocol over TCP (paper §3.3,
// Figure 3).
//
// On startup it prints the enclave's code measurement and the hardware
// attestation public key; parties provision their attestation server with
// both and refuse to submit label distributions to any enclave that fails
// verification.
//
// Usage:
//
//	flipsd -listen 127.0.0.1:7443 -maxk 20 -repeats 20 -parallel 4
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"flips/internal/tee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flipsd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7443", "TCP listen address")
	maxK := flag.Int("maxk", 20, "maximum cluster count for the Davies-Bouldin sweep")
	repeats := flag.Int("repeats", 20, "K-Means restarts per k (the paper's T)")
	version := flag.String("version", "flips-kmeans-v1", "clustering code version (part of the measurement)")
	par := flag.Int("parallel", 0, "cap on CPU parallelism for the service (0 = all cores)")
	flag.Parse()

	if *par > 0 {
		// The service shares hosts with FL aggregators; a deployment can pin
		// its CPU budget without cgroup plumbing.
		runtime.GOMAXPROCS(*par)
	}

	code := tee.ClusteringCode{Version: *version, MaxK: *maxK, Repeats: *repeats}
	hwPub, hwPriv, err := tee.GenerateHardwareKey()
	if err != nil {
		return err
	}
	enclave, err := tee.NewEnclave(code, hwPriv)
	if err != nil {
		return err
	}
	server := tee.NewServer(enclave)
	addr, err := server.Listen(*listen)
	if err != nil {
		return err
	}
	defer server.Close()

	fmt.Printf("flipsd: serving TEE clustering on %s\n", addr)
	fmt.Printf("  enclave measurement:  %s\n", enclave.Measurement())
	fmt.Printf("  hardware public key:  %s\n", hex.EncodeToString(hwPub))
	fmt.Println("  parties must provision their attestation server with both values")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("flipsd: wiping enclave state and shutting down")
	enclave.Wipe()
	return nil
}
