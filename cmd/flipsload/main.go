// Command flipsload is a load generator and SLO gate for the flipsd job
// server. It fires a fixed number of simulation jobs at the server from a
// pool of concurrent submitters, follows each job to completion over the
// streaming endpoint, and reports throughput and latency percentiles.
//
// The exit status is the gate: flipsload fails (non-zero) when any accepted
// job is lost or finishes in error, when nothing was accepted at all, or
// when an SLO flag is violated — -slo-p99 bounds the p99
// submission-to-completion latency, -slo-arrivals floors the accepted
// arrival rate. CI points this at a freshly built flipsd to smoke the
// service under real concurrency.
//
// Usage:
//
//	flipsload -addr http://127.0.0.1:8080 -jobs 100 -concurrency 50 \
//	    -slo-p99 30s -slo-arrivals 5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"flips"
	"flips/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flipsload:", err)
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json).
type report struct {
	Jobs           int     `json:"jobs"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"` // 429/503 or submit transport errors: shed at the edge, never queued
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	Lost           int     `json:"lost"` // accepted but outcome never observed — the drain contract violation
	WallSeconds    float64 `json:"wall_seconds"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec"`
	P50Seconds     float64 `json:"p50_seconds"`
	P95Seconds     float64 `json:"p95_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
}

// outcome is one job's observed fate.
type outcome struct {
	state   string // "done", "failed", "rejected", "lost"
	latency time.Duration
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flipsload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "flipsd job-server base URL")
	jobs := fs.Int("jobs", 100, "total jobs to submit")
	conc := fs.Int("concurrency", 50, "concurrent submitters (jobs in flight from the client side)")
	dataset := fs.String("dataset", "mit-bih-ecg", "dataset for the generated jobs")
	strategy := fs.String("strategy", "random", "party-selection strategy for the generated jobs")
	rounds := fs.Int("rounds", 2, "FL rounds per job")
	parties := fs.Int("parties", 6, "parties per job")
	seed := fs.Uint64("seed", 1, "base seed; job i runs with seed+i")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-job completion deadline before it counts as lost")
	sloP99 := fs.Duration("slo-p99", 0, "fail when p99 job latency exceeds this (0 disables)")
	sloArrivals := fs.Float64("slo-arrivals", 0, "fail when accepted arrivals/sec fall below this (0 disables)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs <= 0 || *conc <= 0 {
		return fmt.Errorf("-jobs and -concurrency must be positive")
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conc,
		MaxIdleConnsPerHost: *conc,
	}}

	var (
		mu       sync.Mutex
		outcomes = make([]outcome, 0, *jobs)
	)
	record := func(o outcome) {
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}

	start := time.Now()
	ids := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				cfg := flips.SimulationConfig{
					Dataset:  *dataset,
					Strategy: *strategy,
					Rounds:   *rounds,
					Parties:  *parties,
					Seed:     *seed + uint64(i),
				}
				record(fireJob(client, strings.TrimRight(*addr, "/"), cfg, *timeout))
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		ids <- i
	}
	close(ids)
	wg.Wait()
	wall := time.Since(start)

	rep := report{Jobs: *jobs, WallSeconds: wall.Seconds()}
	lat := metrics.NewWindow(*jobs)
	for _, o := range outcomes {
		switch o.state {
		case "done":
			rep.Done++
			lat.Push(o.latency.Seconds())
		case "failed":
			rep.Failed++
			lat.Push(o.latency.Seconds())
		case "rejected":
			rep.Rejected++
		default:
			rep.Lost++
		}
	}
	rep.Accepted = rep.Done + rep.Failed + rep.Lost
	if wall > 0 {
		rep.ArrivalsPerSec = float64(rep.Accepted) / wall.Seconds()
	}
	rep.P50Seconds = lat.Quantile(0.50)
	rep.P95Seconds = lat.Quantile(0.95)
	rep.P99Seconds = lat.Quantile(0.99)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "flipsload: %d jobs · %d concurrent · wall %.2fs\n", rep.Jobs, *conc, rep.WallSeconds)
		fmt.Fprintf(stdout, "  accepted=%d done=%d failed=%d rejected=%d lost=%d\n",
			rep.Accepted, rep.Done, rep.Failed, rep.Rejected, rep.Lost)
		fmt.Fprintf(stdout, "  arrivals/sec=%.2f p50=%.3fs p95=%.3fs p99=%.3fs\n",
			rep.ArrivalsPerSec, rep.P50Seconds, rep.P95Seconds, rep.P99Seconds)
	}

	var violations []string
	if rep.Accepted == 0 {
		violations = append(violations, "no job was accepted")
	}
	if rep.Failed > 0 {
		violations = append(violations, fmt.Sprintf("%d jobs failed", rep.Failed))
	}
	if rep.Lost > 0 {
		violations = append(violations, fmt.Sprintf("%d jobs lost (accepted but outcome never observed)", rep.Lost))
	}
	if *sloP99 > 0 && rep.P99Seconds > sloP99.Seconds() {
		violations = append(violations, fmt.Sprintf("p99 latency %.3fs exceeds SLO %s", rep.P99Seconds, sloP99))
	}
	if *sloArrivals > 0 && rep.ArrivalsPerSec < *sloArrivals {
		violations = append(violations, fmt.Sprintf("arrival rate %.2f/s below SLO %.2f/s", rep.ArrivalsPerSec, *sloArrivals))
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		return fmt.Errorf("SLO gate failed: %s", strings.Join(violations, "; "))
	}
	return nil
}

// submitResponse is the slice of server.JobStatus flipsload needs.
type submitResponse struct {
	ID string
}

// streamEvent mirrors server.StreamEvent's terminal fields.
type streamEvent struct {
	Done  bool
	State string
	Error string
}

// fireJob submits one job and follows it to a terminal state. Submission
// shedding (429 during overload, 503 during drain) and transport errors are
// "rejected": the server never owned the job. After acceptance the job is
// tracked via the streaming endpoint — the server pushes the terminal event,
// so during a drain the client observes the outcome before the listener goes
// away. A job counts "lost" only when its outcome could not be observed by
// any means within the deadline.
func fireJob(client *http.Client, base string, cfg flips.SimulationConfig, timeout time.Duration) outcome {
	body, err := json.Marshal(cfg)
	if err != nil {
		return outcome{state: "rejected"}
	}
	start := time.Now()
	resp, err := client.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return outcome{state: "rejected"}
	}
	var sub submitResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sub)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || decodeErr != nil || sub.ID == "" {
		return outcome{state: "rejected"}
	}

	deadline := time.Now().Add(timeout)
	// The stream replays before following, so reconnecting after a broken
	// stream loses nothing. Retry connects briefly: during a drain the
	// listener outlives the jobs, but a blip shouldn't orphan the job.
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		if state, ok := followStream(client, base, sub.ID, deadline); ok {
			return outcome{state: state, latency: time.Since(start)}
		}
		// Stream unavailable — fall back to one status poll before retrying.
		if state, ok := pollStatus(client, base, sub.ID); ok {
			return outcome{state: state, latency: time.Since(start)}
		}
		if attempt >= 4 {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	return outcome{state: "lost"}
}

// followStream reads the job's NDJSON stream until the terminal event.
// Returns ok=false when the stream could not be opened or ended without a
// terminal event.
func followStream(client *http.Client, base, id string, deadline time.Time) (string, bool) {
	req, err := http.NewRequest(http.MethodGet, base+"/jobs/"+id+"/stream", nil)
	if err != nil {
		return "", false
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		if time.Now().After(deadline) {
			return "", false
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev streamEvent
		if json.Unmarshal([]byte(line), &ev) != nil {
			continue
		}
		if ev.Done {
			if ev.State == "done" {
				return "done", true
			}
			return "failed", true
		}
	}
	return "", false
}

// pollStatus makes one GET /jobs/{id}; terminal states resolve the job.
func pollStatus(client *http.Client, base, id string) (string, bool) {
	resp, err := client.Get(base + "/jobs/" + id)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", false
	}
	var st struct {
		State string
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) != nil {
		return "", false
	}
	switch st.State {
	case "done", "failed":
		return st.State, true
	}
	return "", false
}
