package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"flips"
	"flips/internal/server"
)

// TestLoadRunAgainstRealServer drives flipsload end to end against the real
// job server with the real simulation runner: every job must be accepted,
// finish, and be observed — the exact path the CI SLO smoke exercises.
func TestLoadRunAgainstRealServer(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	t.Parallel()
	srv := server.New(server.Config{Workers: 2, QueueDepth: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-jobs", "8", "-concurrency", "4",
		"-rounds", "2", "-parties", "6",
		"-json",
	}, &out)
	if err != nil {
		t.Fatalf("flipsload failed: %v\n%s", err, out.String())
	}
	var rep report
	if jerr := json.Unmarshal(out.Bytes(), &rep); jerr != nil {
		t.Fatalf("bad JSON report: %v\n%s", jerr, out.String())
	}
	if rep.Accepted != 8 || rep.Done != 8 || rep.Failed != 0 || rep.Lost != 0 {
		t.Fatalf("unexpected outcomes: %+v", rep)
	}
	if rep.P99Seconds <= 0 {
		t.Fatalf("latency percentiles not populated: %+v", rep)
	}
	if rep.ArrivalsPerSec <= 0 {
		t.Fatalf("arrival rate not populated: %+v", rep)
	}
}

// TestLoadRunGatesOnFailedJobs wires a runner that fails every job: the gate
// must trip (non-zero) even though all jobs were accepted and observed.
func TestLoadRunGatesOnFailedJobs(t *testing.T) {
	t.Parallel()
	srv := server.New(server.Config{
		Workers: 2,
		Run: func(cfg flips.SimulationConfig, onRound func(flips.RoundPoint)) (*flips.SimulationResult, error) {
			return nil, fmt.Errorf("injected failure")
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	var out bytes.Buffer
	err := run([]string{"-addr", ts.URL, "-jobs", "3", "-concurrency", "3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "jobs failed") {
		t.Fatalf("failed jobs did not trip the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "failed=3") {
		t.Fatalf("report does not show the failures:\n%s", out.String())
	}
}

// TestLoadRunGatesOnLatencySLO uses an instant fake runner and a 1ns p99
// bound, so any observed latency violates the SLO.
func TestLoadRunGatesOnLatencySLO(t *testing.T) {
	t.Parallel()
	srv := server.New(server.Config{
		Workers: 2,
		Run: func(cfg flips.SimulationConfig, onRound func(flips.RoundPoint)) (*flips.SimulationResult, error) {
			return &flips.SimulationResult{}, nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	var out bytes.Buffer
	err := run([]string{"-addr", ts.URL, "-jobs", "3", "-concurrency", "3", "-slo-p99", "1ns"}, &out)
	if err == nil || !strings.Contains(err.Error(), "exceeds SLO") {
		t.Fatalf("latency SLO did not trip the gate: %v\n%s", err, out.String())
	}
}

// TestLoadRunRejectsBadFlags covers the flag surface.
func TestLoadRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-jobs", "0"}, &out); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if err := run([]string{"-concurrency", "-1"}, &out); err == nil {
		t.Fatal("negative concurrency accepted")
	}
}
