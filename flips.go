// Package flips is the public API of the FLIPS reproduction: Federated
// Learning using Intelligent Participant Selection (Bhope et al.,
// MIDDLEWARE 2023).
//
// Two entry points cover the two ways downstream users consume FLIPS:
//
//   - Middleware embeds FLIPS participant selection into an existing FL
//     system: construct it from the parties' label distributions (optionally
//     inside a simulated TEE with remote attestation via NewPrivateMiddleware)
//     and call SelectParticipants each round.
//
//   - RunSimulation / RunTable / RunFigure drive the full evaluation stack —
//     synthetic workloads, Dirichlet non-IID partitioning, five selection
//     strategies, seven FL algorithms, straggler emulation — and regenerate
//     the paper's Tables 1–24 and Figures 2, 5–13.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package flips

import (
	"fmt"
	"sync"

	"flips/internal/core"
	"flips/internal/fl"
	"flips/internal/rng"
	"flips/internal/tee"
	"flips/internal/tensor"
)

// MiddlewareOptions configures label-distribution clustering.
type MiddlewareOptions struct {
	// MaxK bounds the Davies-Bouldin sweep for the optimal cluster count;
	// 0 derives it from the party count.
	MaxK int
	// Repeats is the K-Means restart count per k (default 20, the paper's T).
	Repeats int
	// Seed fixes clustering randomness.
	Seed uint64
}

// Middleware is the FLIPS participant-selection middleware: it clusters
// parties by label distribution once, then serves equitable, straggler-aware
// selections for every FL round (Algorithm 1 of the paper).
//
// A Middleware is safe for concurrent use: an embedding FL system may serve
// SelectParticipants and ReportRound from multiple aggregator goroutines.
// Selection state advances atomically per call, so concurrent rounds observe
// a consistent (if interleaved) pick-count and straggler history.
type Middleware struct {
	mu       sync.Mutex
	selector *core.Selector
	enclave  *tee.Enclave
}

// NewMiddleware clusters the parties' label distributions (labelDists[i] is
// party i's per-label sample counts) and returns a ready selector.
func NewMiddleware(labelDists [][]float64, opts MiddlewareOptions) (*Middleware, error) {
	if len(labelDists) == 0 {
		return nil, fmt.Errorf("flips: no label distributions")
	}
	lds := make([]tensor.Vec, len(labelDists))
	for i, d := range labelDists {
		lds[i] = append(tensor.Vec(nil), d...)
	}
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = len(lds) / 4
		if maxK < 2 {
			maxK = 2
		}
	}
	clusters, err := core.ClusterLabelDistributions(lds, maxK, opts.Repeats, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	selector, err := core.NewSelector(clusters)
	if err != nil {
		return nil, err
	}
	return &Middleware{selector: selector}, nil
}

// NewPrivateMiddleware runs the full private-clustering protocol of paper
// §3.3 in-process: it boots a simulated TEE with the clustering code, has
// every party attest the enclave and submit its label distribution over an
// encrypted channel, and clusters inside the enclave. Label distributions
// and cluster membership never leave the enclave.
func NewPrivateMiddleware(labelDists [][]float64, opts MiddlewareOptions) (*Middleware, error) {
	if len(labelDists) == 0 {
		return nil, fmt.Errorf("flips: no label distributions")
	}
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = len(labelDists) / 4
		if maxK < 2 {
			maxK = 2
		}
	}
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 20
	}
	code := tee.ClusteringCode{Version: "flips-kmeans-v1", MaxK: maxK, Repeats: repeats}
	hwPub, hwPriv, err := tee.GenerateHardwareKey()
	if err != nil {
		return nil, err
	}
	enclave, err := tee.NewEnclave(code, hwPriv)
	if err != nil {
		return nil, err
	}
	attest, err := tee.NewAttestationServer(hwPub, code.Measure())
	if err != nil {
		return nil, err
	}
	for partyID, ld := range labelDists {
		client := tee.NewPartyClient(partyID, attest)
		if err := client.Handshake(enclave); err != nil {
			return nil, fmt.Errorf("party %d: %w", partyID, err)
		}
		if err := client.SubmitLabelDistribution(enclave, append(tensor.Vec(nil), ld...)); err != nil {
			return nil, fmt.Errorf("party %d: %w", partyID, err)
		}
	}
	if err := enclave.Cluster(opts.Seed); err != nil {
		return nil, err
	}
	return &Middleware{enclave: enclave}, nil
}

// SelectParticipants returns the party IDs for round r with nominal size
// target (FLIPS may over-provision while stragglers are outstanding).
func (m *Middleware) SelectParticipants(round, target int) ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enclave != nil {
		return m.enclave.SelectParticipants(round, target)
	}
	return m.selector.Select(round, target), nil
}

// ReportRound feeds the round outcome back so straggler over-provisioning
// adapts (Algorithm 1 lines 33–45).
func (m *Middleware) ReportRound(round int, selected, completed, stragglers []int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enclave != nil {
		return m.enclave.ObserveRound(selected, completed, stragglers, round)
	}
	m.selector.Observe(fl.RoundFeedback{
		Round:      round,
		Selected:   selected,
		Completed:  completed,
		Stragglers: stragglers,
	})
	return nil
}

// NumClusters reports how many label-distribution clusters were found.
func (m *Middleware) NumClusters() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enclave != nil {
		return m.enclave.NumClusters()
	}
	return m.selector.NumClusters(), nil
}

// Close wipes TEE state (no-op for the plain middleware).
func (m *Middleware) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enclave != nil {
		m.enclave.Wipe()
	}
}
