package flips

import (
	"math"
	"testing"
	"time"

	"flips/internal/dist"
)

// distTestConfig is a small but non-trivial job: non-IID split, FedYogi
// server optimizer, legacy stragglers — everything coordinator-side that the
// distributed path must keep byte-identical.
func distTestConfig() SimulationConfig {
	return SimulationConfig{
		Dataset:       "mit-bih-ecg",
		Strategy:      "random",
		Parties:       30,
		Rounds:        3,
		StragglerRate: 0.2,
		Seed:          42,
	}
}

func startRunner(t *testing.T, workers int) *DistRunner {
	t.Helper()
	coord := dist.NewCoordinator()
	addr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = coord.Close() })
	for i := 0; i < workers; i++ {
		go func() {
			_ = dist.RunWorker(addr, dist.WorkerOptions{Builder: DistWorkerBuilder(), Parallelism: 1})
		}()
	}
	if err := coord.AwaitWorkers(workers, 10*time.Second); err != nil {
		t.Fatalf("await workers: %v", err)
	}
	return &DistRunner{Coord: coord, Workers: workers}
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSameResult(t *testing.T, label string, want, got *SimulationResult) {
	t.Helper()
	if len(want.History) != len(got.History) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		w, g := want.History[i], got.History[i]
		if !sameBits(w.Accuracy, g.Accuracy) || !sameBits(w.MeanLoss, g.MeanLoss) ||
			!sameBits(w.SimTime, g.SimTime) || w.CommBytes != g.CommBytes ||
			w.Invited != g.Invited || w.Completed != g.Completed {
			t.Fatalf("%s: round %d diverged: %+v vs %+v", label, i, g, w)
		}
		for j := range w.PerLabel {
			if !sameBits(w.PerLabel[j], g.PerLabel[j]) {
				t.Fatalf("%s: round %d label %d accuracy diverged", label, i, j)
			}
		}
	}
	if !sameBits(want.PeakAccuracy, got.PeakAccuracy) || want.RoundsToTarget != got.RoundsToTarget ||
		!sameBits(want.SimTime, got.SimTime) || want.TotalCommBytes != got.TotalCommBytes {
		t.Fatalf("%s: summary diverged: %+v vs %+v", label, got, want)
	}
}

// TestDistRunnerMatchesInProcess runs the same job in-process and over 1- and
// 3-worker process fleets (loopback connections, worker protocol end to end)
// and requires byte-identical convergence histories.
func TestDistRunnerMatchesInProcess(t *testing.T) {
	cfg := distTestConfig()
	var points []RoundPoint
	want, err := RunSimulationStream(cfg, func(p RoundPoint) { points = append(points, p) })
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	if len(points) != len(want.History) {
		t.Fatalf("in-process streamed %d rounds, history has %d", len(points), len(want.History))
	}
	for _, workers := range []int{1, 3} {
		r := startRunner(t, workers)
		var streamed []RoundPoint
		got, err := r.Run(cfg, func(p RoundPoint) { streamed = append(streamed, p) })
		if err != nil {
			t.Fatalf("distributed run (%d workers): %v", workers, err)
		}
		requireSameResult(t, "distributed", want, got)
		if len(streamed) != len(want.History) {
			t.Fatalf("distributed streamed %d rounds, want %d", len(streamed), len(want.History))
		}
		stats := r.WorkerStats()
		if len(stats) != 1 {
			t.Fatalf("worker stats retained %d jobs, want the finished job's snapshot", len(stats))
		}
		for _, slots := range stats {
			if len(slots) != workers {
				t.Fatalf("retained snapshot has %d slots, want %d", len(slots), workers)
			}
			for _, st := range slots {
				if !st.Connected || st.Waves == 0 {
					t.Fatalf("retained slot %d not a working snapshot: %+v", st.Slot, st)
				}
			}
		}
	}
}

// TestDistRunnerRejectsMisconfiguration covers the error paths callers hit
// before any worker traffic.
func TestDistRunnerRejectsMisconfiguration(t *testing.T) {
	r := &DistRunner{}
	if _, err := r.Run(distTestConfig(), nil); err == nil {
		t.Fatal("nil coordinator accepted")
	}
	r = startRunner(t, 1)
	bad := distTestConfig()
	bad.Dataset = "no-such-dataset"
	if _, err := r.Run(bad, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestPartiesOverrideBumpsTrainSize pins the resolve() rule that keeps
// Dirichlet partitioning feasible for fleet-scale Parties overrides: the
// training set grows to at least two samples per party.
func TestPartiesOverrideBumpsTrainSize(t *testing.T) {
	cfg := SimulationConfig{Dataset: "mit-bih-ecg", Parties: 10000}
	_, scale, err := cfg.resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if scale.TrainSize < 2*scale.Parties {
		t.Fatalf("train size %d not bumped for %d parties", scale.TrainSize, scale.Parties)
	}
}
