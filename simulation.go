package flips

import (
	"fmt"
	"io"

	"flips/internal/chaos"
	"flips/internal/dataset"
	"flips/internal/device"
	"flips/internal/experiment"
	"flips/internal/fl"
)

// SimulationConfig selects one evaluation cell of the paper's grid.
type SimulationConfig struct {
	// Dataset is one of "mit-bih-ecg", "ham10000", "femnist",
	// "fashion-mnist".
	Dataset string
	// Algorithm is one of "fedavg", "fedprox", "fedyogi", "fedadam",
	// "fedadagrad", "feddyn", "fedsgd" (default "fedyogi").
	Algorithm string
	// Strategy is any selector name in the selection registry — see
	// Strategies() for the accepted list: the paper's five ("random",
	// "flips", "oort", "gradclus", "tifl"), "power-of-choice",
	// "cluster-proportional", the scored family ("grad-norm", "loss-prop",
	// "divergence"), the deadline-aware pair ("soft-deadline",
	// "hard-deadline") and "dpp" (default "flips").
	Strategy string
	// CandidateFactor is the power-of-choice candidate over-sampling ratio
	// d/Nr: the selector invites utility-ranked winners from a candidate
	// list of CandidateFactor × cohort-size parties. 0 keeps the default of
	// 2; values in (0, 1) are rejected. Ignored by the other strategies.
	CandidateFactor float64
	// Alpha is the Dirichlet non-IIDness (default 0.3).
	Alpha float64
	// PartyFraction is per-round participation (default 0.2).
	PartyFraction float64
	// StragglerRate drops this fraction of invited parties (default 0).
	// Legacy straggler model; ignored when DeviceProfile is set.
	StragglerRate float64
	// DeviceProfile enables the device heterogeneity simulator: "" keeps
	// the legacy flat straggler drop, "uniform" gives a homogeneous
	// always-on fleet, "lognormal" a heavy-tailed compute/bandwidth fleet.
	// With a profile set, stragglers arise from simulated round wall-clock
	// (offline parties and Deadline misses) and the result reports
	// simulated time-to-target-accuracy.
	DeviceProfile string
	// Availability selects the fleet's availability process (device model
	// only): "always-on" (default), "churn", "diurnal".
	Availability string
	// Deadline is the per-round reporting deadline in simulated seconds
	// (device model only; 0 waits for every online party). Under "semisync"
	// aggregation it is the required window length.
	Deadline float64
	// Aggregation selects the engine's execution model: "" or "sync"
	// (synchronous rounds, the paper's setting), "buffered" (FedBuff-style
	// asynchronous aggregation every BufferSize arrivals with
	// staleness-discounted weights) or "semisync" (Deadline-length windows;
	// stragglers carry over into later windows instead of being dropped).
	// Rounds counts aggregation steps in every mode, and SimTime /
	// TimeToTarget ride the same simulated event clock, so time-to-accuracy
	// is comparable across modes.
	Aggregation string
	// BufferSize is the "buffered" policy's aggregation trigger K (0 uses
	// half the per-round cohort).
	BufferSize int
	// StalenessHalfLife is the async staleness discount half-life in server
	// model versions — an update s versions stale keeps 2^(−s/H) of its
	// weight (0 uses the default of 4).
	StalenessHalfLife float64
	// PaperScale runs the full 200-party/400-round configuration instead of
	// the laptop default.
	PaperScale bool
	// Rounds overrides the round budget when positive.
	Rounds int
	// Parties overrides the population size when positive.
	Parties int
	// Parallelism bounds concurrent local training, evaluation shards and
	// repeat runs. Zero uses GOMAXPROCS; 1 forces the sequential path. The
	// result is bit-identical at every setting (see DESIGN.md).
	Parallelism int
	// Shards partitions the party population into deterministic contiguous
	// shards for fleet-scale aggregation: per-party engine state becomes
	// shard-local and lazily allocated, and the aggregation fold is
	// partitioned across the worker pool. Results are bit-identical at
	// every value (see DESIGN.md, "Sharded aggregation"); raise it for
	// 100k+-party populations. Zero keeps a single shard.
	Shards int
	// Fold selects the aggregation fold: "" or "mean" (the paper's
	// example-weighted FedAvg average), "trimmed-mean", "median" or "krum".
	// The robust folds discard outlier updates and are what stands between
	// a byzantine minority and the global model (see DESIGN.md, "Chaos
	// engine").
	Fold string
	// FaultModel turns a fraction of the fleet faulty: "" or "none",
	// "label-flip" (training labels rewritten to a fixed wrong class),
	// "scaled" (deltas multiplied by FaultScale), "sign-flip" (deltas
	// negated) or "byzantine" (deltas replaced with FaultScale-scaled
	// Gaussian noise). The faulty set is drawn deterministically from Seed.
	FaultModel string
	// FaultFraction is the fraction of parties that misbehave under
	// FaultModel; required positive when FaultModel is set.
	FaultFraction float64
	// FaultScale scales "scaled" deltas and "byzantine" noise (0 uses the
	// default of 10).
	FaultScale float64
	// Mask enables Bonawitz-style pairwise secure-aggregation masking: the
	// server only ever folds the cohort sum of fixed-point-encoded, masked
	// updates, never an individual update. Invited parties escrow Shamir
	// shares of their mask seeds at wave start, so deadline-missers and
	// outage victims have their masks reconstructed from the survivors;
	// when survivors fall below ShareThreshold the round aborts gracefully
	// (RoundPoint.MaskAborted) and the model is left untouched. Requires
	// the mean fold and a positive Clip (defaulted to 1 when unset).
	Mask bool
	// Clip bounds each update's L2 norm before aggregation. With Mask it is
	// required — it caps the fixed-point encoding range; alone it is plain
	// defense-in-depth clipping on the plaintext fold.
	Clip float64
	// Epsilon, when positive, adds per-round (ε, 0)-differential-privacy
	// Laplace noise calibrated to sensitivity 2·Clip/contributors to the
	// folded mean delta. Requires Clip.
	Epsilon float64
	// ShareThreshold is the minimum number of surviving cohort members
	// required to reconstruct dropout masks (0 uses a cohort majority).
	// Lower tolerates more dropouts; higher hardens against collusion.
	ShareThreshold int
	// Seed fixes all randomness.
	Seed uint64
}

// RoundPoint is one evaluated round of a simulation.
type RoundPoint struct {
	Round     int
	Accuracy  float64 // balanced accuracy on the held-out global test set
	PerLabel  []float64
	CommBytes int64
	// Invited and Completed count this round's cohort: how many parties
	// were dispatched and how many arrivals the aggregation step folded.
	Invited   int
	Completed int
	// MeanLoss is the cohort's mean local training loss.
	MeanLoss float64
	// RoundTime is this round's simulated wall-clock seconds; SimTime is
	// the cumulative simulated wall-clock through this round (device-model
	// durations, or the legacy latency proxy).
	RoundTime float64
	SimTime   float64
	// ShardsTouched counts the distinct aggregation shards this round's
	// completed parties fell into — the streaming shard-locality metric.
	ShardsTouched int
	// Rejected counts completed updates this aggregation step refused to
	// fold because they carried non-finite (NaN/Inf) coordinates.
	Rejected int
	// MaskAborted reports that this aggregation step was abandoned because
	// secure-aggregation dropout recovery fell below the share threshold:
	// nothing was folded and the model did not move.
	MaskAborted bool
}

// SimulationResult summarizes a finished FL simulation.
type SimulationResult struct {
	History        []RoundPoint
	PeakAccuracy   float64
	RoundsToTarget int // -1 if the target was not reached
	// TimeToTarget is the simulated seconds at which the target accuracy
	// was first reached (-1 if never) and SimTime the run's total simulated
	// wall-clock — the time-to-accuracy axis of the device model.
	TimeToTarget   float64
	SimTime        float64
	TargetAccuracy float64
	TotalCommBytes int64
	NumClusters    int // FLIPS strategy only; 0 otherwise
}

func (c SimulationConfig) resolve() (experiment.Setting, experiment.Scale, error) {
	spec, ok := dataset.ByName(c.Dataset)
	if !ok {
		names := make([]string, 0, 4)
		for _, s := range dataset.AllSpecs() {
			names = append(names, s.Name)
		}
		return experiment.Setting{}, experiment.Scale{}, fmt.Errorf("flips: unknown dataset %q (valid: %v)", c.Dataset, names)
	}
	scale := experiment.LaptopScale()
	if c.PaperScale {
		scale = experiment.PaperScale()
	}
	if c.Rounds > 0 {
		scale.Rounds = c.Rounds
	} else {
		scale.Rounds = experiment.RoundsFor(spec, scale)
	}
	if c.Parties > 0 {
		scale.Parties = c.Parties
	}
	if scale.TrainSize > 0 && scale.TrainSize < 2*scale.Parties {
		// Dirichlet partitioning needs at least one sample per party; give a
		// Parties override headroom instead of failing at build time.
		scale.TrainSize = 2 * scale.Parties
	}
	scale.Parallelism = c.Parallelism
	setting := experiment.Setting{
		Spec:              spec,
		Algorithm:         orDefault(c.Algorithm, experiment.AlgoFedYogi),
		Strategy:          orDefault(c.Strategy, experiment.StrategyFLIPS),
		CandidateFactor:   c.CandidateFactor,
		Alpha:             orDefaultF(c.Alpha, 0.3),
		PartyFraction:     orDefaultF(c.PartyFraction, 0.2),
		StragglerRate:     c.StragglerRate,
		Deadline:          c.Deadline,
		Aggregation:       c.Aggregation,
		BufferSize:        c.BufferSize,
		StalenessHalfLife: c.StalenessHalfLife,
		Shards:            c.Shards,
		Fold:              c.Fold,
		TargetAccuracy:    experiment.TargetFor(spec),
		Seed:              c.Seed,
	}
	clip := c.Clip
	if c.Mask && clip == 0 {
		// Masking needs a clip bound to cap the fixed-point encoding range;
		// unit norm is the conventional default.
		clip = 1
	}
	setting.Privacy = fl.PrivacyConfig{
		Mask:           c.Mask,
		Clip:           clip,
		Epsilon:        c.Epsilon,
		ShareThreshold: c.ShareThreshold,
	}
	fault, err := chaos.FaultModelByName(c.FaultModel)
	if err != nil {
		return experiment.Setting{}, experiment.Scale{}, fmt.Errorf("flips: %w", err)
	}
	if fault != chaos.FaultNone {
		if c.FaultFraction <= 0 {
			return experiment.Setting{}, experiment.Scale{}, fmt.Errorf("flips: fault model %q requires a positive FaultFraction", c.FaultModel)
		}
		setting.Chaos = &chaos.Spec{
			Seed:          c.Seed,
			Fault:         fault,
			FaultFraction: c.FaultFraction,
			FaultScale:    c.FaultScale,
		}
	} else if c.FaultFraction != 0 {
		return experiment.Setting{}, experiment.Scale{}, fmt.Errorf("flips: FaultFraction requires a fault model")
	}
	devCfg, err := c.resolveDevice()
	if err != nil {
		return experiment.Setting{}, experiment.Scale{}, err
	}
	setting.Device = devCfg
	return setting, scale, nil
}

// resolveDevice maps the string-typed device knobs to a device.Config, or
// nil for the legacy straggler model.
func (c SimulationConfig) resolveDevice() (*device.Config, error) {
	if c.DeviceProfile == "" {
		if c.Availability != "" {
			return nil, fmt.Errorf("flips: availability %q requires a device profile", c.Availability)
		}
		// Semi-sync windows are legal on the legacy (device-less) clock,
		// where durations come from the unitless latency × steps proxy.
		if c.Deadline != 0 && c.Aggregation != "semisync" {
			return nil, fmt.Errorf("flips: deadline requires a device profile")
		}
		return nil, nil
	}
	var cfg device.Config
	switch c.DeviceProfile {
	case "uniform":
		cfg = device.Uniform()
	case "lognormal":
		cfg = device.Lognormal()
	default:
		return nil, fmt.Errorf("flips: unknown device profile %q (valid: uniform, lognormal)", c.DeviceProfile)
	}
	kind, err := device.KindByName(c.Availability)
	if err != nil {
		return nil, fmt.Errorf("flips: %w", err)
	}
	cfg.Availability.Kind = kind
	return &cfg, nil
}

// Validate checks the configuration without running it: unknown datasets,
// strategies, device profiles, availability processes and aggregation modes
// are reported immediately. The job server uses it to answer a malformed
// submission with 400 instead of accepting a job doomed to fail.
func (c SimulationConfig) Validate() error {
	setting, scale, err := c.resolve()
	if err != nil {
		return err
	}
	built, err := experiment.Build(setting, scale)
	if err != nil {
		return err
	}
	// The engine's own validation catches the cross-field privacy rules —
	// masking with a robust fold, fixed-point headroom for this fleet's
	// total weight, checkpointing under masks — before a job is accepted.
	return built.Config.Validate()
}

// RunSimulation executes one FL job and returns its convergence history.
func RunSimulation(cfg SimulationConfig) (*SimulationResult, error) {
	return RunSimulationStream(cfg, nil)
}

// RunSimulationStream is RunSimulation with a live per-round hook: onRound,
// when non-nil, receives every evaluated round as it completes — the
// streaming surface behind the job server's NDJSON/SSE round feed. The hook
// runs on the engine goroutine, so it should hand off quickly; the PerLabel
// slice must be copied if retained.
func RunSimulationStream(cfg SimulationConfig, onRound func(RoundPoint)) (*SimulationResult, error) {
	setting, scale, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	built, err := experiment.Build(setting, scale)
	if err != nil {
		return nil, err
	}
	var hook func(fl.RoundStats)
	if onRound != nil {
		hook = func(h fl.RoundStats) { onRound(roundPoint(h)) }
	}
	res, err := experiment.RunSettingStream(setting, scale, hook)
	if err != nil {
		return nil, err
	}
	out := &SimulationResult{
		PeakAccuracy:   res.PeakAccuracy,
		RoundsToTarget: res.RoundsToTarget,
		TimeToTarget:   res.TimeToTarget,
		SimTime:        res.SimTime,
		TargetAccuracy: setting.TargetAccuracy,
		TotalCommBytes: res.TotalCommBytes,
		NumClusters:    len(built.Clusters),
	}
	for _, h := range res.History {
		out.History = append(out.History, roundPoint(h))
	}
	return out, nil
}

// roundPoint maps the engine's RoundStats onto the public round shape.
func roundPoint(h fl.RoundStats) RoundPoint {
	return RoundPoint{
		Round:         h.Round,
		Accuracy:      h.Accuracy,
		PerLabel:      h.PerLabel,
		CommBytes:     h.CommBytes,
		Invited:       h.Invited,
		Completed:     h.Completed,
		MeanLoss:      h.MeanLoss,
		RoundTime:     h.RoundTime,
		SimTime:       h.SimTime,
		ShardsTouched: h.ShardsTouched,
		Rejected:      h.Rejected,
		MaskAborted:   h.MaskAborted,
	}
}

// RunTable regenerates one of the paper's Tables 1–24 and writes it to w.
// paperScale switches to the 200-party/400-round grid.
func RunTable(w io.Writer, tableID int, paperScale bool, seed uint64) error {
	spec, err := experiment.TableSpecByID(tableID)
	if err != nil {
		return err
	}
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	grid, err := experiment.RunGrid(spec.Dataset, spec.Algorithm, scale, seed, nil)
	if err != nil {
		return err
	}
	grid.RenderTable(w, spec)
	return nil
}

// RunHeterogeneity runs the device-heterogeneity sweep — FLIPS vs Oort vs
// Random over a lognormal fleet under always-on/churn/diurnal availability ×
// round deadlines — and writes its time-to-target-accuracy table to w. This
// is the scenario family the paper's flat straggler drop cannot express.
func RunHeterogeneity(w io.Writer, paperScale bool, seed uint64) error {
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	table, err := experiment.RunHeterogeneity(scale, seed, nil)
	if err != nil {
		return err
	}
	table.Render(w)
	return nil
}

// RunAsync runs the aggregation-mode sweep — FLIPS vs Oort vs Random over a
// lognormal device fleet under synchronous rounds, FedBuff-style buffered
// aggregation and semi-synchronous deadline windows, crossed with two
// staleness half-lives — and writes its time-to-target-accuracy table to w.
// This is the execution-model family the synchronous round loop cannot
// express: slow devices stop stalling the round, and their late updates are
// folded with staleness-discounted weights instead of being dropped.
func RunAsync(w io.Writer, paperScale bool, seed uint64) error {
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	table, err := experiment.RunAsync(scale, seed, nil, nil)
	if err != nil {
		return err
	}
	table.Render(w)
	return nil
}

// RunChaos runs the fault-matrix sweep — a clean control plus correlated
// regional outages, flash-crowd surges, label flips and byzantine parties,
// crossed with the mean and robust aggregation folds and the selection
// strategies — and writes its time-to-target-accuracy degradation table to
// w. This is the fault-tolerance family the clean evaluation cannot
// express: it answers which (selector, fold) pairs keep converging when the
// fleet misbehaves, and what that robustness costs when nothing goes wrong.
func RunChaos(w io.Writer, paperScale bool, seed uint64) error {
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	table, err := experiment.RunChaos(scale, seed, nil, nil)
	if err != nil {
		return err
	}
	table.Render(w)
	return nil
}

// RunPrivacy runs the privacy-ladder sweep — a plaintext control, clipping
// alone, pairwise secure-aggregation masking with Shamir dropout recovery,
// and masking plus differential-privacy noise, crossed with the selection
// strategies over a lognormal churn fleet — and writes its
// time-to-target-accuracy cost table to w. This is the deployment family the
// plaintext evaluation cannot express: it prices each rung of the privacy
// ladder in convergence time and counts the rounds lost to below-threshold
// mask aborts.
func RunPrivacy(w io.Writer, paperScale bool, seed uint64) error {
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	table, err := experiment.RunPrivacy(scale, seed, nil, nil)
	if err != nil {
		return err
	}
	table.Render(w)
	return nil
}

// TournamentConfig configures the selector tournament.
type TournamentConfig struct {
	// Selectors lists the competitors by registry name; nil or empty enters
	// every registered selector (see Strategies()).
	Selectors []string
	// PaperScale runs the 200-party/400-round configuration instead of the
	// laptop default.
	PaperScale bool
	// Rounds overrides the round budget when positive.
	Rounds int
	// Parties overrides the population size when positive.
	Parties int
	// Parallelism bounds concurrent cells (0 = GOMAXPROCS).
	Parallelism int
	// Seed fixes the run.
	Seed uint64
}

// RunTournament runs the selector tournament — every registered selection
// strategy (or the configured subset) ranked on time-to-target-accuracy
// across clean, non-IID, churn and byzantine fleet regimes — and writes its
// ranking table to w. The final order is the across-arm mean of normalized
// per-arm ranks, so a selector wins by being consistently near the top, not
// by one lucky cell.
func RunTournament(w io.Writer, cfg TournamentConfig) error {
	scale := experiment.LaptopScale()
	if cfg.PaperScale {
		scale = experiment.PaperScale()
	}
	if cfg.Rounds > 0 {
		scale.Rounds = cfg.Rounds
	}
	if cfg.Parties > 0 {
		scale.Parties = cfg.Parties
		if scale.TrainSize > 0 && scale.TrainSize < 2*scale.Parties {
			scale.TrainSize = 2 * scale.Parties
		}
	}
	scale.Parallelism = cfg.Parallelism
	table, err := experiment.RunTournament(scale, cfg.Seed, cfg.Selectors, nil)
	if err != nil {
		return err
	}
	table.Render(w)
	return nil
}

// ScaleConfig configures the fleet-scale sweep.
type ScaleConfig struct {
	// Parties lists population sizes (default 1k, 10k, 100k).
	Parties []int
	// Shards lists shard counts crossed with each population (default 1, 64).
	Shards []int
	// Rounds is the aggregation-step budget per cell (default 8).
	Rounds int
	// Strategy picks the selector by registry name — any name in
	// Strategies() is accepted (default "random").
	Strategy string
	// Repeats re-runs each cell, reporting streaming mean ± std (default 1).
	Repeats int
	// Parallelism bounds the engine worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Seed fixes the run.
	Seed uint64
}

// RunScale runs the fleet-scale sweep — parties × shards over the buffered
// (FedBuff-style) engine, measuring wall-clock aggregation throughput,
// arrivals/sec, shard locality and heap growth — and writes its table to w.
// This is the harness behind `flipsbench -exp scale`; a 100k-party cell
// completes in seconds because the engine's per-party state is shard-local
// and the selectors' fleet-scale paths are O(cohort), not O(population).
func RunScale(w io.Writer, cfg ScaleConfig) error {
	table, err := experiment.RunScale(experiment.ScaleSweep{
		Parties:     cfg.Parties,
		Shards:      cfg.Shards,
		Rounds:      cfg.Rounds,
		Repeats:     cfg.Repeats,
		Strategy:    cfg.Strategy,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
	}, nil)
	if err != nil {
		return err
	}
	table.Render(w)
	return nil
}

// RunFigure regenerates one of the paper's figures ("fig2", "fig5".."fig13")
// and writes its plottable data to w.
func RunFigure(w io.Writer, figureID string, paperScale bool, seed uint64) error {
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	fig, err := experiment.RunFigure(figureID, scale, seed)
	if err != nil {
		return err
	}
	fig.Render(w)
	return nil
}

// Datasets lists the built-in workload names.
func Datasets() []string {
	specs := dataset.AllSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Strategies lists the built-in participant-selection strategy names — the
// selection registry's canonical order, so the list cannot drift from what
// actually builds.
func Strategies() []string {
	return experiment.ExtendedStrategies()
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func orDefaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
