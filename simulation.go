package flips

import (
	"fmt"
	"io"

	"flips/internal/dataset"
	"flips/internal/experiment"
)

// SimulationConfig selects one evaluation cell of the paper's grid.
type SimulationConfig struct {
	// Dataset is one of "mit-bih-ecg", "ham10000", "femnist",
	// "fashion-mnist".
	Dataset string
	// Algorithm is one of "fedavg", "fedprox", "fedyogi", "fedadam",
	// "fedadagrad", "feddyn", "fedsgd" (default "fedyogi").
	Algorithm string
	// Strategy is one of "random", "flips", "oort", "gradclus", "tifl",
	// "power-of-choice" (default "flips").
	Strategy string
	// Alpha is the Dirichlet non-IIDness (default 0.3).
	Alpha float64
	// PartyFraction is per-round participation (default 0.2).
	PartyFraction float64
	// StragglerRate drops this fraction of invited parties (default 0).
	StragglerRate float64
	// PaperScale runs the full 200-party/400-round configuration instead of
	// the laptop default.
	PaperScale bool
	// Rounds overrides the round budget when positive.
	Rounds int
	// Parties overrides the population size when positive.
	Parties int
	// Parallelism bounds concurrent local training, evaluation shards and
	// repeat runs. Zero uses GOMAXPROCS; 1 forces the sequential path. The
	// result is bit-identical at every setting (see DESIGN.md).
	Parallelism int
	// Seed fixes all randomness.
	Seed uint64
}

// RoundPoint is one evaluated round of a simulation.
type RoundPoint struct {
	Round     int
	Accuracy  float64 // balanced accuracy on the held-out global test set
	PerLabel  []float64
	CommBytes int64
}

// SimulationResult summarizes a finished FL simulation.
type SimulationResult struct {
	History        []RoundPoint
	PeakAccuracy   float64
	RoundsToTarget int // -1 if the target was not reached
	TargetAccuracy float64
	TotalCommBytes int64
	NumClusters    int // FLIPS strategy only; 0 otherwise
}

func (c SimulationConfig) resolve() (experiment.Setting, experiment.Scale, error) {
	spec, ok := dataset.ByName(c.Dataset)
	if !ok {
		names := make([]string, 0, 4)
		for _, s := range dataset.AllSpecs() {
			names = append(names, s.Name)
		}
		return experiment.Setting{}, experiment.Scale{}, fmt.Errorf("flips: unknown dataset %q (valid: %v)", c.Dataset, names)
	}
	scale := experiment.LaptopScale()
	if c.PaperScale {
		scale = experiment.PaperScale()
	}
	if c.Rounds > 0 {
		scale.Rounds = c.Rounds
	} else {
		scale.Rounds = experiment.RoundsFor(spec, scale)
	}
	if c.Parties > 0 {
		scale.Parties = c.Parties
	}
	scale.Parallelism = c.Parallelism
	setting := experiment.Setting{
		Spec:           spec,
		Algorithm:      orDefault(c.Algorithm, experiment.AlgoFedYogi),
		Strategy:       orDefault(c.Strategy, experiment.StrategyFLIPS),
		Alpha:          orDefaultF(c.Alpha, 0.3),
		PartyFraction:  orDefaultF(c.PartyFraction, 0.2),
		StragglerRate:  c.StragglerRate,
		TargetAccuracy: experiment.TargetFor(spec),
		Seed:           c.Seed,
	}
	return setting, scale, nil
}

// RunSimulation executes one FL job and returns its convergence history.
func RunSimulation(cfg SimulationConfig) (*SimulationResult, error) {
	setting, scale, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	built, err := experiment.Build(setting, scale)
	if err != nil {
		return nil, err
	}
	res, err := experiment.RunSetting(setting, scale)
	if err != nil {
		return nil, err
	}
	out := &SimulationResult{
		PeakAccuracy:   res.PeakAccuracy,
		RoundsToTarget: res.RoundsToTarget,
		TargetAccuracy: setting.TargetAccuracy,
		TotalCommBytes: res.TotalCommBytes,
		NumClusters:    len(built.Clusters),
	}
	for _, h := range res.History {
		out.History = append(out.History, RoundPoint{
			Round:     h.Round,
			Accuracy:  h.Accuracy,
			PerLabel:  h.PerLabel,
			CommBytes: h.CommBytes,
		})
	}
	return out, nil
}

// RunTable regenerates one of the paper's Tables 1–24 and writes it to w.
// paperScale switches to the 200-party/400-round grid.
func RunTable(w io.Writer, tableID int, paperScale bool, seed uint64) error {
	spec, err := experiment.TableSpecByID(tableID)
	if err != nil {
		return err
	}
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	grid, err := experiment.RunGrid(spec.Dataset, spec.Algorithm, scale, seed, nil)
	if err != nil {
		return err
	}
	grid.RenderTable(w, spec)
	return nil
}

// RunFigure regenerates one of the paper's figures ("fig2", "fig5".."fig13")
// and writes its plottable data to w.
func RunFigure(w io.Writer, figureID string, paperScale bool, seed uint64) error {
	scale := experiment.LaptopScale()
	if paperScale {
		scale = experiment.PaperScale()
	}
	fig, err := experiment.RunFigure(figureID, scale, seed)
	if err != nil {
		return err
	}
	fig.Render(w)
	return nil
}

// Datasets lists the built-in workload names.
func Datasets() []string {
	specs := dataset.AllSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Strategies lists the built-in participant-selection strategy names.
func Strategies() []string {
	return append(experiment.AllStrategies(), experiment.StrategyPowerOfChoice)
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func orDefaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
